// Sharded-coordinator coverage: deterministic home-shard routing,
// cross-shard escalation, per-shard statistics, expiry callbacks under
// sharding, mixed-case relation handling, and a randomized differential
// test pinning sharded matching to the single-mutex coordinator's
// outcomes.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "entangle/coordinator.h"
#include "entangle/normalizer.h"
#include "sql/parser.h"

namespace youtopia {
namespace {

using std::chrono::milliseconds;

/// A full coordination stack (storage + txns + coordinator) so sharded
/// and unsharded coordinators can run the same workload side by side.
struct Stack {
  StorageEngine storage;
  std::unique_ptr<TxnManager> txns;
  std::unique_ptr<Coordinator> coordinator;

  explicit Stack(size_t num_shards, int num_dests = 8) {
    EXPECT_TRUE(storage
                    .CreateTable("Flights",
                                 Schema({{"fno", DataType::kInt64, false},
                                         {"dest", DataType::kString, false}}))
                    .ok());
    // Exactly one flight per destination: groundings are unique, so any
    // correct matcher must produce identical answers.
    for (int d = 0; d < num_dests; ++d) {
      EXPECT_TRUE(
          storage
              .Insert("Flights",
                      Tuple({Value::Int64(100 + d),
                             Value::String("City" + std::to_string(d))}))
              .ok());
    }
    txns = std::make_unique<TxnManager>(&storage);
    CoordinatorConfig config;
    config.num_shards = num_shards;
    coordinator = std::make_unique<Coordinator>(&storage, txns.get(), config);
  }

  EntangledQuery Parse(const std::string& sql, const std::string& owner) {
    auto stmt = Parser::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto query = Normalizer::Normalize(
        static_cast<const SelectStatement&>(*stmt.value()), 0, owner, sql);
    EXPECT_TRUE(query.ok()) << query.status();
    return query.TakeValue();
  }

  Result<EntangledHandle> Submit(const std::string& sql,
                                 const std::string& owner) {
    return coordinator->Submit(Parse(sql, owner));
  }
};

/// Pairwise query with head and constraint on one relation.
std::string PairSql(const std::string& relation, const std::string& self,
                    const std::string& other, const std::string& dest) {
  return "SELECT '" + self + "', fno INTO ANSWER " + relation +
         " WHERE fno IN (SELECT fno FROM Flights WHERE dest='" + dest +
         "') AND ('" + other + "', fno) IN ANSWER " + relation + " CHOOSE 1";
}

/// Asymmetric pair: the head goes to one relation, the partner
/// constraint reads another — the cross-shard case when the two
/// relations hash to different shards.
std::string CrossSql(const std::string& head_relation,
                     const std::string& constraint_relation,
                     const std::string& self, const std::string& other,
                     const std::string& dest) {
  return "SELECT '" + self + "', fno INTO ANSWER " + head_relation +
         " WHERE fno IN (SELECT fno FROM Flights WHERE dest='" + dest +
         "') AND ('" + other + "', fno) IN ANSWER " + constraint_relation +
         " CHOOSE 1";
}

/// Finds `want` relation names that the coordinator places on pairwise
/// distinct shards.
std::vector<std::string> RelationsOnDistinctShards(const Coordinator& c,
                                                   size_t want) {
  std::vector<std::string> out;
  std::set<size_t> used;
  for (char suffix = 'A'; suffix <= 'Z' && out.size() < want; ++suffix) {
    const std::string relation = std::string("Rel") + suffix;
    if (used.insert(c.ShardOfRelation(relation)).second) {
      out.push_back(relation);
    }
  }
  return out;
}

/// Two relation names that share a shard.
std::vector<std::string> RelationsOnOneShard(const Coordinator& c) {
  std::map<size_t, std::string> seen;
  for (char suffix = 'A'; suffix <= 'Z'; ++suffix) {
    const std::string relation = std::string("Same") + suffix;
    const size_t shard = c.ShardOfRelation(relation);
    auto it = seen.find(shard);
    if (it != seen.end()) return {it->second, relation};
    seen.emplace(shard, relation);
  }
  return {};
}

TEST(ShardedCoordinatorTest, RoutingIsDeterministicAndCaseInsensitive) {
  Stack stack(4);
  const Coordinator& c = *stack.coordinator;
  EXPECT_EQ(c.num_shards(), 4u);
  EXPECT_EQ(c.ShardOfRelation("Reservation"),
            c.ShardOfRelation("RESERVATION"));
  EXPECT_EQ(c.ShardOfRelation("Reservation"),
            c.ShardOfRelation("reservation"));

  // Home shard: lexicographically smallest relation among heads and
  // constraints, regardless of which atom names it.
  auto a = stack.Parse(CrossSql("Alpha", "Beta", "A", "B", "City0"), "A");
  auto b = stack.Parse(CrossSql("Beta", "Alpha", "B", "A", "City0"), "B");
  EXPECT_EQ(c.HomeShardOf(a), c.ShardOfRelation("Alpha"));
  EXPECT_EQ(c.HomeShardOf(a), c.HomeShardOf(b));
}

TEST(ShardedCoordinatorTest, MultiRelationQueryOnOneShardStaysLocal) {
  Stack stack(4);
  auto same = RelationsOnOneShard(*stack.coordinator);
  ASSERT_EQ(same.size(), 2u);

  auto handle = stack.Submit(CrossSql(same[0], same[1], "A", "B", "City0"),
                             "A");
  ASSERT_TRUE(handle.ok()) << handle.status();
  auto stats = stack.coordinator->stats();
  EXPECT_EQ(stats.cross_shard_queries, 0u);
  EXPECT_EQ(stats.shard_rounds, 1u);
  EXPECT_EQ(stats.global_rounds, 0u);

  // The partner routes to the same home shard and the pair closes.
  auto partner = stack.Submit(CrossSql(same[1], same[0], "B", "A", "City0"),
                              "B");
  ASSERT_TRUE(partner.ok());
  EXPECT_TRUE(handle->Done());
  EXPECT_TRUE(partner->Done());
  EXPECT_EQ(stack.coordinator->stats().global_rounds, 0u);
}

TEST(ShardedCoordinatorTest, CrossShardPairEscalatesAndMatches) {
  Stack stack(4);
  auto rels = RelationsOnDistinctShards(*stack.coordinator, 2);
  ASSERT_EQ(rels.size(), 2u);

  auto first = stack.Submit(CrossSql(rels[0], rels[1], "S", "P", "City1"),
                            "S");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->Done());
  auto mid = stack.coordinator->stats();
  EXPECT_EQ(mid.cross_shard_queries, 1u);
  EXPECT_EQ(mid.global_rounds, 1u);

  auto second = stack.Submit(CrossSql(rels[1], rels[0], "P", "S", "City1"),
                             "P");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(first->Done());
  EXPECT_TRUE(second->Done());
  ASSERT_EQ(first->Answers().size(), 1u);
  ASSERT_EQ(second->Answers().size(), 1u);
  EXPECT_EQ(first->Answers()[0].at(1), second->Answers()[0].at(1));
  EXPECT_EQ(stack.coordinator->pending_count(), 0u);
  EXPECT_EQ(stack.coordinator->stats().cross_shard_queries, 2u);
}

TEST(ShardedCoordinatorTest, LocalQueriesEscalateWhileCrossShardPending) {
  Stack stack(4);
  auto rels = RelationsOnDistinctShards(*stack.coordinator, 3);
  ASSERT_GE(rels.size(), 3u);

  // A cross-shard query parks in the pool...
  auto spanning = stack.Submit(
      CrossSql(rels[0], rels[1], "S", "Ghost", "City2"), "S");
  ASSERT_TRUE(spanning.ok());
  EXPECT_FALSE(spanning->Done());

  // ...so even a single-relation pair on a third shard must take
  // global rounds — and still closes correctly.
  auto a = stack.Submit(PairSql(rels[2], "A", "B", "City3"), "A");
  auto b = stack.Submit(PairSql(rels[2], "B", "A", "City3"), "B");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->Done());
  EXPECT_TRUE(b->Done());
  auto stats = stack.coordinator->stats();
  EXPECT_EQ(stats.global_rounds, 3u);
  EXPECT_EQ(stats.shard_rounds, 0u);

  // Withdrawing the cross-shard query restores shard-local matching.
  ASSERT_TRUE(stack.coordinator->Cancel(spanning->id()).ok());
  auto c = stack.Submit(PairSql(rels[2], "C", "D", "City3"), "C");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(stack.coordinator->stats().shard_rounds, 1u);
}

TEST(ShardedCoordinatorTest, SubmitAllRoutesBatchAcrossShards) {
  Stack stack(4);
  auto rels = RelationsOnDistinctShards(*stack.coordinator, 2);
  ASSERT_EQ(rels.size(), 2u);

  // Two complete pairs on different shards in one batch: one round per
  // touched shard, both groups close, handles in submission order.
  std::vector<EntangledQuery> batch;
  batch.push_back(stack.Parse(PairSql(rels[0], "A", "B", "City4"), "A"));
  batch.push_back(stack.Parse(PairSql(rels[1], "C", "D", "City5"), "C"));
  batch.push_back(stack.Parse(PairSql(rels[0], "B", "A", "City4"), "B"));
  batch.push_back(stack.Parse(PairSql(rels[1], "D", "C", "City5"), "D"));
  auto handles = stack.coordinator->SubmitAll(std::move(batch));
  ASSERT_TRUE(handles.ok()) << handles.status();
  ASSERT_EQ(handles->size(), 4u);
  for (const auto& handle : *handles) EXPECT_TRUE(handle.Done());
  EXPECT_EQ((*handles)[0].Answers()[0].at(1), (*handles)[2].Answers()[0].at(1));
  EXPECT_EQ((*handles)[1].Answers()[0].at(1), (*handles)[3].Answers()[0].at(1));

  auto stats = stack.coordinator->stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_queries, 4u);
  EXPECT_EQ(stats.shard_rounds, 2u);
  EXPECT_EQ(stats.global_rounds, 0u);
  EXPECT_EQ(stats.matched_groups, 2u);
}

TEST(ShardedCoordinatorTest, PerShardStatsSumToGlobalTotals) {
  Stack stack(4);
  auto rels = RelationsOnDistinctShards(*stack.coordinator, 3);
  ASSERT_GE(rels.size(), 2u);
  for (size_t r = 0; r < rels.size(); ++r) {
    const std::string dest = "City" + std::to_string(r);
    const std::string a = "A" + std::to_string(r);
    const std::string b = "B" + std::to_string(r);
    ASSERT_TRUE(stack.Submit(PairSql(rels[r], a, b, dest), a).ok());
    ASSERT_TRUE(stack.Submit(PairSql(rels[r], b, a, dest), b).ok());
    ASSERT_TRUE(
        stack.Submit(PairSql(rels[r], "lonely" + std::to_string(r), "ghost",
                             dest),
                     "lonely")
            .ok());
  }
  ASSERT_TRUE(
      stack.Submit(CrossSql(rels[0], rels[1], "S", "Ghost", "City6"), "S")
          .ok());

  const CoordinatorStats total = stack.coordinator->stats();
  CoordinatorStats sum;
  size_t pending_sum = 0;
  for (const Coordinator::ShardInfo& info : stack.coordinator->ShardInfos()) {
    // Batch and callback counters are coordinator-wide.
    EXPECT_EQ(info.stats.batches, 0u);
    EXPECT_EQ(info.stats.callbacks_registered, 0u);
    sum.submitted += info.stats.submitted;
    sum.matched_queries += info.stats.matched_queries;
    sum.matched_groups += info.stats.matched_groups;
    sum.cancelled += info.stats.cancelled;
    sum.failed_installs += info.stats.failed_installs;
    sum.match_calls += info.stats.match_calls;
    sum.search_steps_total += info.stats.search_steps_total;
    sum.shard_rounds += info.stats.shard_rounds;
    sum.global_rounds += info.stats.global_rounds;
    sum.cross_shard_queries += info.stats.cross_shard_queries;
    pending_sum += info.pending;
  }
  EXPECT_EQ(sum.submitted, total.submitted);
  EXPECT_EQ(sum.matched_queries, total.matched_queries);
  EXPECT_EQ(sum.matched_groups, total.matched_groups);
  EXPECT_EQ(sum.cancelled, total.cancelled);
  EXPECT_EQ(sum.failed_installs, total.failed_installs);
  EXPECT_EQ(sum.match_calls, total.match_calls);
  EXPECT_EQ(sum.search_steps_total, total.search_steps_total);
  EXPECT_EQ(sum.shard_rounds, total.shard_rounds);
  EXPECT_EQ(sum.global_rounds, total.global_rounds);
  EXPECT_EQ(sum.cross_shard_queries, total.cross_shard_queries);
  EXPECT_EQ(pending_sum, stack.coordinator->pending_count());
  EXPECT_EQ(total.submitted, rels.size() * 3 + 1);
}

TEST(ShardedCoordinatorTest, ExpireFiresCallbacksAcrossShards) {
  Stack stack(4);
  auto rels = RelationsOnDistinctShards(*stack.coordinator, 3);
  ASSERT_GE(rels.size(), 2u);
  size_t fired = 0;
  std::set<StatusCode> outcomes;
  std::vector<EntangledHandle> handles;
  for (size_t r = 0; r < rels.size(); ++r) {
    auto handle = stack.Submit(
        PairSql(rels[r], "lonely" + std::to_string(r), "ghost", "City0"),
        "lonely");
    ASSERT_TRUE(handle.ok());
    handle->OnComplete([&](const EntangledHandle& done) {
      ++fired;
      outcomes.insert(done.Outcome().value_or(Status::OK()).code());
    });
    handles.push_back(*handle);
  }
  auto expired = stack.coordinator->ExpireOlderThan(milliseconds(0));
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired.value(), rels.size());
  EXPECT_EQ(fired, rels.size());
  EXPECT_EQ(outcomes, std::set<StatusCode>{StatusCode::kTimedOut});
  EXPECT_EQ(stack.coordinator->pending_count(), 0u);
  for (const auto& handle : handles) {
    EXPECT_TRUE(handle.Done());
    EXPECT_EQ(handle.Outcome()->code(), StatusCode::kTimedOut);
  }
}

TEST(ShardedCoordinatorTest, CancelRoutesToOwningShard) {
  Stack stack(4);
  auto rels = RelationsOnDistinctShards(*stack.coordinator, 2);
  ASSERT_EQ(rels.size(), 2u);
  auto handle = stack.Submit(PairSql(rels[1], "K", "J", "City0"), "K");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(stack.coordinator->Cancel(handle->id()).ok());
  EXPECT_TRUE(handle->Done());
  EXPECT_EQ(handle->Outcome()->code(), StatusCode::kAborted);
  EXPECT_EQ(stack.coordinator->Cancel(handle->id()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(stack.coordinator->pending_count(), 0u);
}

// Satellite regression: relation-name case must not affect matching,
// sharded or not — routing, pool indexes, and the matcher all normalize
// with ToLowerAscii.
TEST(ShardedCoordinatorTest, MixedCaseRelationsMatchAcrossSpellings) {
  for (size_t shards : {size_t{1}, size_t{4}}) {
    Stack stack(shards);
    auto a = stack.Submit(CrossSql("Reservation", "RESERVATION", "A", "B",
                                   "City0"),
                          "A");
    ASSERT_TRUE(a.ok()) << a.status();
    EXPECT_FALSE(a->Done());
    auto b = stack.Submit(CrossSql("reservation", "Reservation", "B", "A",
                                   "City0"),
                          "B");
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_TRUE(a->Done()) << "shards=" << shards;
    EXPECT_TRUE(b->Done()) << "shards=" << shards;
    EXPECT_EQ(a->Answers()[0].at(1), b->Answers()[0].at(1));
    // Mixed-case spellings never register as a cross-shard query.
    EXPECT_EQ(stack.coordinator->stats().cross_shard_queries, 0u);
  }
}

// Concurrent stress over the sharding machinery itself: threads mix
// shard-local pairs, cross-shard pairs (exercising escalation and the
// cross_shard_pending_ protocol), and submit-then-cancel lonely
// queries, all racing each other. Every pair must close by the time
// its second half's Submit returns — concurrent installs touch
// disjoint relation sets, so nothing can abort — and the coordinator
// must end drained, with consistent counters, and back in shard-local
// mode. Run under TSAN to check the lock protocol.
TEST(ShardedCoordinatorTest, ConcurrentMixedWorkloadStress) {
  constexpr int kThreads = 8;
  constexpr int kPairsPerThread = 24;
  constexpr int kNumDests = 64;
  Stack stack(4, kNumDests);
  auto rels = RelationsOnDistinctShards(*stack.coordinator, 4);
  ASSERT_GE(rels.size(), 2u);

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> cancelled{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int p = 0; p < kPairsPerThread; ++p) {
        const int unit = t * kPairsPerThread + p;
        const std::string dest = "City" + std::to_string(unit % kNumDests);
        const std::string a = "A" + std::to_string(unit);
        const std::string b = "B" + std::to_string(unit);
        const std::string& rel = rels[t % rels.size()];
        Result<EntangledHandle> first = Status::OK();
        Result<EntangledHandle> second = Status::OK();
        if (p % 6 == 5) {
          const std::string& rel2 = rels[(t + 1) % rels.size()];
          first = stack.Submit(CrossSql(rel, rel2, a, b, dest), a);
          second = stack.Submit(CrossSql(rel2, rel, b, a, dest), b);
        } else {
          first = stack.Submit(PairSql(rel, a, b, dest), a);
          second = stack.Submit(PairSql(rel, b, a, dest), b);
        }
        if (!first.ok() || !second.ok() || !first->Done() ||
            !second->Done() || !first->Outcome()->ok()) {
          mismatches.fetch_add(1);
        }
        if (p % 8 == 7) {
          auto lonely = stack.Submit(
              PairSql(rel, "L" + std::to_string(unit), "nobody", dest), a);
          if (lonely.ok() &&
              stack.coordinator->Cancel(lonely->id()).ok()) {
            cancelled.fetch_add(1);
          } else {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(stack.coordinator->pending_count(), 0u);
  const CoordinatorStats stats = stack.coordinator->stats();
  const size_t pairs = kThreads * kPairsPerThread;
  EXPECT_EQ(stats.submitted, pairs * 2 + cancelled.load());
  EXPECT_EQ(stats.matched_queries, pairs * 2);
  EXPECT_EQ(stats.matched_groups, pairs);
  EXPECT_EQ(stats.cancelled, cancelled.load());
  // Per-shard counters stay additive under concurrency.
  size_t submitted_sum = 0;
  for (const auto& info : stack.coordinator->ShardInfos()) {
    submitted_sum += info.stats.submitted;
  }
  EXPECT_EQ(submitted_sum, stats.submitted);
  // Every cross-shard query was withdrawn or satisfied, so shard-local
  // matching must be back: a fresh local pair takes a shard round.
  const size_t shard_rounds_before = stats.shard_rounds;
  ASSERT_TRUE(stack.Submit(PairSql(rels[0], "Z1", "Z2", "City0"), "Z").ok());
  EXPECT_GT(stack.coordinator->stats().shard_rounds, shard_rounds_before);
}

// Install hooks may read and write tables shared across every shard
// (the travel inventory pattern decrements Flights seats). While a
// hook is registered all rounds escalate to mutually exclusive global
// rounds, so concurrent shard rounds can never 2PL-conflict with each
// other (stranding a matched group) or dirty-read a hook transaction's
// uncommitted writes.
TEST(ShardedCoordinatorTest, InstallHookOnSharedTableSurvivesConcurrency) {
  constexpr int kThreads = 4;
  constexpr int kPairsPerThread = 12;
  Stack stack(4, /*num_dests=*/8);
  auto rels = RelationsOnDistinctShards(*stack.coordinator, 4);
  ASSERT_GE(rels.size(), 2u);

  // A single-row counter table that every install decrements — the
  // worst case: every hook invocation writes the same row.
  ASSERT_TRUE(stack.storage
                  .CreateTable("Inventory",
                               Schema({{"remaining", DataType::kInt64,
                                        false}}))
                  .ok());
  auto rid = stack.storage.Insert("Inventory", Tuple({Value::Int64(100000)}));
  ASSERT_TRUE(rid.ok());
  stack.coordinator->SetInstallHook(
      [rid = rid.value()](Transaction* txn, TxnManager* txns,
                          const MatchResult&) -> Status {
        auto row = txns->Get(txn, "Inventory", rid);
        if (!row.ok()) return row.status();
        Tuple updated = row.TakeValue();
        updated.at(0) = Value::Int64(updated.at(0).int64_value() - 1);
        return txns->Update(txn, "Inventory", rid, updated);
      });

  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string& rel = rels[t % rels.size()];
      for (int p = 0; p < kPairsPerThread; ++p) {
        const int unit = t * kPairsPerThread + p;
        const std::string dest = "City" + std::to_string(unit % 8);
        const std::string a = "HA" + std::to_string(unit);
        const std::string b = "HB" + std::to_string(unit);
        auto first = stack.Submit(PairSql(rel, a, b, dest), a);
        auto second = stack.Submit(PairSql(rel, b, a, dest), b);
        if (!first.ok() || !second.ok() || !first->Done() ||
            !second->Done()) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(stack.coordinator->pending_count(), 0u);
  const CoordinatorStats stats = stack.coordinator->stats();
  EXPECT_EQ(stats.failed_installs, 0u);
  EXPECT_EQ(stats.matched_groups,
            static_cast<size_t>(kThreads * kPairsPerThread));
  // Hook registered => every round escalated; none ran shard-local.
  EXPECT_EQ(stats.shard_rounds, 0u);
  // Exactly one decrement per installed group survived the races.
  auto row = stack.storage.Get("Inventory", rid.value());
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->at(0).int64_value(),
            100000 - kThreads * kPairsPerThread);
}

// The acceptance-criterion differential test: a randomized mixed
// workload (several relations with mixed-case spellings, cross-relation
// pairs, lonely queries, shuffled submission order) must produce
// identical coordination outcomes on a sharded coordinator and on the
// single-mutex coordinator.
TEST(ShardedCoordinatorTest, RandomizedDifferentialMatchesUnsharded) {
  constexpr int kNumDests = 40;
  constexpr size_t kPairs = 30;
  Stack sharded(4, kNumDests);
  Stack unsharded(1, kNumDests);

  const std::vector<std::string> bases = {"PairRes", "GroupRes", "SeatRes",
                                          "HotelRes", "CabRes"};
  Random rng(0xD1FFu);
  auto spell = [&](const std::string& base) {
    switch (rng.NextBelow(3)) {
      case 0: return ToLowerAscii(base);
      case 1: return ToUpperAscii(base);
      default: return base;
    }
  };

  struct Planned {
    std::string sql;
    std::string owner;
  };
  std::vector<Planned> plan;
  for (size_t p = 0; p < kPairs; ++p) {
    const std::string dest = "City" + std::to_string(p % kNumDests);
    const std::string a = "A" + std::to_string(p);
    const std::string b = "B" + std::to_string(p);
    if (p % 5 == 4) {
      // Cross-relation pair (cross-shard whenever the two relations
      // hash apart under the sharded stack).
      const std::string& x = bases[rng.NextBelow(bases.size())];
      const std::string& y = bases[rng.NextBelow(bases.size())];
      plan.push_back({CrossSql(spell(x), spell(y), a, b, dest), a});
      plan.push_back({CrossSql(spell(y), spell(x), b, a, dest), b});
    } else {
      const std::string& rel = bases[rng.NextBelow(bases.size())];
      plan.push_back({PairSql(spell(rel), a, b, dest), a});
      plan.push_back({PairSql(spell(rel), b, a, dest), b});
    }
  }
  for (int l = 0; l < 5; ++l) {
    const std::string& rel = bases[rng.NextBelow(bases.size())];
    plan.push_back({PairSql(spell(rel), "lonely" + std::to_string(l), "ghost",
                            "City0"),
                    "lonely"});
  }
  for (size_t i = plan.size(); i > 1; --i) {
    std::swap(plan[i - 1], plan[rng.NextBelow(i)]);
  }

  std::vector<EntangledHandle> sharded_handles;
  std::vector<EntangledHandle> unsharded_handles;
  for (const Planned& planned : plan) {
    auto hs = sharded.Submit(planned.sql, planned.owner);
    auto hu = unsharded.Submit(planned.sql, planned.owner);
    ASSERT_TRUE(hs.ok()) << hs.status();
    ASSERT_TRUE(hu.ok()) << hu.status();
    sharded_handles.push_back(*hs);
    unsharded_handles.push_back(*hu);
  }

  // Identical per-handle outcomes...
  for (size_t i = 0; i < plan.size(); ++i) {
    ASSERT_EQ(sharded_handles[i].Done(), unsharded_handles[i].Done())
        << plan[i].sql;
    if (!sharded_handles[i].Done()) continue;
    EXPECT_EQ(sharded_handles[i].Outcome()->code(),
              unsharded_handles[i].Outcome()->code());
    // One flight per destination: the grounded answers are unique, so
    // they must agree tuple for tuple.
    auto sa = sharded_handles[i].Answers();
    auto ua = unsharded_handles[i].Answers();
    ASSERT_EQ(sa.size(), ua.size());
    for (size_t t = 0; t < sa.size(); ++t) EXPECT_EQ(sa[t], ua[t]);
  }
  EXPECT_EQ(sharded.coordinator->pending_count(),
            unsharded.coordinator->pending_count());
  // ...and identical durable answer relations.
  for (const std::string& base : bases) {
    auto ss = sharded.storage.Scan(base);
    auto us = unsharded.storage.Scan(base);
    ASSERT_EQ(ss.ok(), us.ok()) << base;
    if (!ss.ok()) continue;  // relation never materialized in either
    std::multiset<std::string> sharded_rows;
    std::multiset<std::string> unsharded_rows;
    for (const auto& [rid, tuple] : *ss) sharded_rows.insert(tuple.ToString());
    for (const auto& [rid, tuple] : *us) {
      unsharded_rows.insert(tuple.ToString());
    }
    EXPECT_EQ(sharded_rows, unsharded_rows) << base;
  }
  const CoordinatorStats stats = sharded.coordinator->stats();
  EXPECT_GT(stats.shard_rounds, 0u);
  EXPECT_GT(stats.global_rounds, 0u);
}

}  // namespace
}  // namespace youtopia
