#include "entangle/unification.h"

#include <gtest/gtest.h>

namespace youtopia {
namespace {

TEST(SubstitutionTest, FreshVarsAreUnbound) {
  Substitution s(3);
  EXPECT_EQ(s.num_vars(), 3u);
  EXPECT_FALSE(s.Lookup(0).has_value());
  EXPECT_FALSE(s.SameClass(0, 1));
}

TEST(SubstitutionTest, UnifyVarsMergesClasses) {
  Substitution s(3);
  EXPECT_TRUE(s.UnifyVars(0, 0, 1, 0));
  EXPECT_TRUE(s.SameClass(0, 1));
  EXPECT_FALSE(s.SameClass(0, 2));
  EXPECT_TRUE(s.UnifyVars(1, 0, 2, 0));
  EXPECT_TRUE(s.SameClass(0, 2));
}

TEST(SubstitutionTest, ConstantPropagatesThroughClass) {
  Substitution s(2);
  ASSERT_TRUE(s.UnifyVars(0, 0, 1, 0));
  ASSERT_TRUE(s.UnifyConstant(0, 0, Value::Int64(122)));
  EXPECT_EQ(s.Lookup(1)->int64_value(), 122);
}

TEST(SubstitutionTest, ConflictingConstantsFail) {
  Substitution s(2);
  ASSERT_TRUE(s.UnifyConstant(0, 0, Value::Int64(122)));
  EXPECT_FALSE(s.UnifyConstant(0, 0, Value::Int64(123)));
  ASSERT_TRUE(s.UnifyConstant(1, 0, Value::Int64(123)));
  EXPECT_FALSE(s.UnifyVars(0, 0, 1, 0));
}

TEST(SubstitutionTest, OffsetsRelateIntegerVars) {
  // value(0) + 1 == value(1)  (i.e. var1 = var0 + 1)
  Substitution s(2);
  ASSERT_TRUE(s.UnifyVars(0, 1, 1, 0));
  ASSERT_TRUE(s.UnifyConstant(0, 0, Value::Int64(10)));
  EXPECT_EQ(s.Lookup(1)->int64_value(), 11);
}

TEST(SubstitutionTest, OffsetChainAccumulates) {
  // v1 = v0 + 1, v2 = v1 + 1 => v2 = v0 + 2.
  Substitution s(3);
  ASSERT_TRUE(s.UnifyVars(0, 1, 1, 0));
  ASSERT_TRUE(s.UnifyVars(1, 1, 2, 0));
  ASSERT_TRUE(s.UnifyConstant(2, 0, Value::Int64(7)));
  EXPECT_EQ(s.Lookup(0)->int64_value(), 5);
  EXPECT_EQ(s.Lookup(1)->int64_value(), 6);
}

TEST(SubstitutionTest, InconsistentOffsetCycleFails) {
  // v1 = v0 + 1 and v1 = v0 + 2 is contradictory.
  Substitution s(2);
  ASSERT_TRUE(s.UnifyVars(0, 1, 1, 0));
  EXPECT_FALSE(s.UnifyVars(0, 2, 1, 0));
  // Zero-offset self-cycle is fine.
  EXPECT_TRUE(s.UnifyVars(0, 1, 1, 0));
}

TEST(SubstitutionTest, OffsetWithNonIntegerFails) {
  Substitution s(2);
  ASSERT_TRUE(s.UnifyVars(0, 1, 1, 0));
  EXPECT_FALSE(s.UnifyConstant(0, 0, Value::String("Paris")));
}

TEST(SubstitutionTest, ZeroOffsetWithStringsWorks) {
  Substitution s(2);
  ASSERT_TRUE(s.UnifyVars(0, 0, 1, 0));
  ASSERT_TRUE(s.UnifyConstant(1, 0, Value::String("Paris")));
  EXPECT_EQ(s.Lookup(0)->string_value(), "Paris");
}

TEST(SubstitutionTest, ConstantOffsetArithmetic) {
  // value(v) + 2 == 10  =>  v = 8.
  Substitution s(1);
  ASSERT_TRUE(s.UnifyConstant(0, 2, Value::Int64(10)));
  EXPECT_EQ(s.Lookup(0)->int64_value(), 8);
}

TEST(SubstitutionTest, BoundClassesMergeWithConsistentOffsets) {
  Substitution s(2);
  ASSERT_TRUE(s.UnifyConstant(0, 0, Value::Int64(5)));
  ASSERT_TRUE(s.UnifyConstant(1, 0, Value::Int64(6)));
  // v0 + 1 == v1 holds (5 + 1 == 6).
  EXPECT_TRUE(s.UnifyVars(0, 1, 1, 0));
  // And the bindings survive the merge.
  EXPECT_EQ(s.Lookup(0)->int64_value(), 5);
  EXPECT_EQ(s.Lookup(1)->int64_value(), 6);
}

TEST(SubstitutionTest, CopySemanticsForBacktracking) {
  Substitution s(2);
  Substitution snapshot = s;
  ASSERT_TRUE(s.UnifyConstant(0, 0, Value::Int64(1)));
  EXPECT_TRUE(s.Lookup(0).has_value());
  EXPECT_FALSE(snapshot.Lookup(0).has_value());
}

TEST(SubstitutionTest, AddVarsExtends) {
  Substitution s(1);
  s.AddVars(2);
  EXPECT_EQ(s.num_vars(), 3u);
  EXPECT_FALSE(s.Lookup(2).has_value());
}

TEST(UnifyTermsTest, AllCombinations) {
  Substitution s(2);
  EXPECT_TRUE(s.UnifyTerms(Term::Constant(Value::Int64(1)),
                           Term::Constant(Value::Int64(1))));
  EXPECT_FALSE(s.UnifyTerms(Term::Constant(Value::Int64(1)),
                            Term::Constant(Value::Int64(2))));
  EXPECT_TRUE(
      s.UnifyTerms(Term::Variable(0), Term::Constant(Value::Int64(5))));
  EXPECT_EQ(s.Lookup(0)->int64_value(), 5);
  EXPECT_TRUE(s.UnifyTerms(Term::Constant(Value::Int64(9)),
                           Term::Variable(1)));
  EXPECT_EQ(s.Lookup(1)->int64_value(), 9);
}

TEST(UnifyAtomsTest, PaperFigure1Unification) {
  // Kramer's constraint R('Jerry', f_K) vs Jerry's head R('Jerry', f_J):
  // global vars f_K = 0, f_J = 1.
  Substitution s(2);
  AnswerAtom constraint{"Reservation",
                        {Term::Constant(Value::String("Jerry")),
                         Term::Variable(0)}};
  AnswerAtom head{"Reservation",
                  {Term::Constant(Value::String("Jerry")),
                   Term::Variable(1)}};
  EXPECT_TRUE(UnifyAtoms(constraint, head, &s));
  EXPECT_TRUE(s.SameClass(0, 1));
}

TEST(UnifyAtomsTest, RelationAndArityMustMatch) {
  Substitution s(2);
  AnswerAtom a{"R", {Term::Variable(0)}};
  AnswerAtom b{"S", {Term::Variable(1)}};
  EXPECT_FALSE(UnifyAtoms(a, b, &s));
  AnswerAtom c{"R", {Term::Variable(0), Term::Variable(1)}};
  EXPECT_FALSE(UnifyAtoms(a, c, &s));
  // Case-insensitive relation names unify.
  AnswerAtom d{"r", {Term::Variable(1)}};
  EXPECT_TRUE(UnifyAtoms(a, d, &s));
}

TEST(UnifyAtomsTest, ConstantMismatchFails) {
  Substitution s(0);
  AnswerAtom a{"R", {Term::Constant(Value::String("Jerry"))}};
  AnswerAtom b{"R", {Term::Constant(Value::String("Kramer"))}};
  EXPECT_FALSE(UnifyAtoms(a, b, &s));
}

TEST(UnifyAtomWithTupleTest, GroundsVariables) {
  Substitution s(1);
  AnswerAtom atom{"R",
                  {Term::Constant(Value::String("Kramer")),
                   Term::Variable(0)}};
  Tuple stored({Value::String("Kramer"), Value::Int64(122)});
  EXPECT_TRUE(UnifyAtomWithTuple(atom, stored, &s));
  EXPECT_EQ(s.Lookup(0)->int64_value(), 122);

  Tuple wrong({Value::String("Jerry"), Value::Int64(122)});
  Substitution s2(1);
  EXPECT_FALSE(UnifyAtomWithTuple(atom, wrong, &s2));
}

TEST(UnifyAtomWithTupleTest, OffsetTermAgainstTuple) {
  // atom term is var+1; tuple value 10 => var = 9.
  Substitution s(1);
  AnswerAtom atom{"R", {Term::Variable(0, 1)}};
  EXPECT_TRUE(UnifyAtomWithTuple(atom, Tuple({Value::Int64(10)}), &s));
  EXPECT_EQ(s.Lookup(0)->int64_value(), 9);
}

TEST(AtomsMayUnifyTest, SymbolicPrefilter) {
  AnswerAtom a{"R",
               {Term::Constant(Value::String("Jerry")), Term::Variable(0)}};
  AnswerAtom b{"R",
               {Term::Constant(Value::String("Jerry")), Term::Variable(3)}};
  AnswerAtom c{"R",
               {Term::Constant(Value::String("Kramer")), Term::Variable(0)}};
  EXPECT_TRUE(AtomsMayUnify(a, b));
  EXPECT_FALSE(AtomsMayUnify(a, c));  // constant clash
  // Variables are compatible with anything at prefilter level.
  AnswerAtom d{"R", {Term::Variable(1), Term::Variable(2)}};
  EXPECT_TRUE(AtomsMayUnify(a, d));
}

TEST(TermTest, ToStringUsesNamesAndOffsets) {
  std::vector<std::string> names = {"fno", "seat"};
  EXPECT_EQ(Term::Variable(0).ToString(&names), "fno");
  EXPECT_EQ(Term::Variable(1, 1).ToString(&names), "seat + 1");
  EXPECT_EQ(Term::Variable(1, -2).ToString(&names), "seat - 2");
  EXPECT_EQ(Term::Variable(5).ToString(&names), "$5");
  EXPECT_EQ(Term::Constant(Value::Int64(122)).ToString(), "122");
}

TEST(AnswerAtomTest, GroundnessAndTupleConversion) {
  AnswerAtom ground{"R",
                    {Term::Constant(Value::String("Jerry")),
                     Term::Constant(Value::Int64(122))}};
  EXPECT_TRUE(ground.IsGround());
  EXPECT_EQ(ground.ToTuple(), Tuple({Value::String("Jerry"),
                                     Value::Int64(122)}));
  AnswerAtom open{"R", {Term::Variable(0)}};
  EXPECT_FALSE(open.IsGround());
  EXPECT_EQ(ground.ToString(), "R('Jerry', 122)");
}

}  // namespace
}  // namespace youtopia
