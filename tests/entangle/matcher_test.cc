#include "entangle/matcher.h"

#include <gtest/gtest.h>

#include "entangle/normalizer.h"
#include "sql/parser.h"

namespace youtopia {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Figure 1(a) database.
    ASSERT_TRUE(storage_
                    .CreateTable("Flights",
                                 Schema({{"fno", DataType::kInt64, false},
                                         {"dest", DataType::kString, false}}))
                    .ok());
    for (auto [fno, dest] : std::vector<std::pair<int64_t, const char*>>{
             {122, "Paris"}, {123, "Paris"}, {134, "Paris"}, {136, "Rome"}}) {
      ASSERT_TRUE(storage_
                      .Insert("Flights", Tuple({Value::Int64(fno),
                                                Value::String(dest)}))
                      .ok());
    }
    ASSERT_TRUE(storage_
                    .CreateTable("Reservation",
                                 Schema({{"traveler", DataType::kString, false},
                                         {"fno", DataType::kInt64, false}}))
                    .ok());
  }

  /// Normalizes SQL into the pool under the given id.
  void AddQuery(QueryId id, const std::string& sql) {
    auto stmt = Parser::ParseStatement(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status();
    auto q = Normalizer::Normalize(
        static_cast<const SelectStatement&>(*stmt.value()), id, "", sql);
    ASSERT_TRUE(q.ok()) << q.status();
    pool_.Add(std::make_shared<const EntangledQuery>(q.TakeValue()));
  }

  static std::string PairQuery(const std::string& self,
                               const std::string& other,
                               const std::string& dest = "Paris") {
    return "SELECT '" + self + "', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest = '" + dest + "') AND ('" +
           other + "', fno) IN ANSWER Reservation CHOOSE 1";
  }

  StorageEngine storage_;
  PendingPool pool_;
  MatchConfig config_;
};

TEST_F(MatcherTest, LoneQueryWithPartnerConstraintStaysPending) {
  AddQuery(1, PairQuery("Kramer", "Jerry"));
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(1, pool_);
  ASSERT_TRUE(match.ok()) << match.status();
  EXPECT_FALSE(match->has_value());
}

TEST_F(MatcherTest, SymmetricPairMatches) {
  AddQuery(1, PairQuery("Kramer", "Jerry"));
  AddQuery(2, PairQuery("Jerry", "Kramer"));
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(2, pool_);
  ASSERT_TRUE(match.ok()) << match.status();
  ASSERT_TRUE(match->has_value());
  const MatchResult& result = match->value();
  EXPECT_EQ(result.group.size(), 2u);

  // Both queries receive the same flight number, and it goes to Paris.
  const Tuple& kramer = result.answers.at(1)[0];
  const Tuple& jerry = result.answers.at(2)[0];
  EXPECT_EQ(kramer.at(0).string_value(), "Kramer");
  EXPECT_EQ(jerry.at(0).string_value(), "Jerry");
  EXPECT_EQ(kramer.at(1), jerry.at(1));
  const int64_t fno = kramer.at(1).int64_value();
  EXPECT_TRUE(fno == 122 || fno == 123 || fno == 134);
  EXPECT_EQ(result.installed.size(), 2u);
  EXPECT_EQ(result.relations, std::vector<std::string>{"reservation"});
}

TEST_F(MatcherTest, MismatchedDestinationsDoNotMatch) {
  AddQuery(1, PairQuery("Kramer", "Jerry", "Paris"));
  AddQuery(2, PairQuery("Jerry", "Kramer", "Rome"));
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(2, pool_);
  ASSERT_TRUE(match.ok());
  // Symbolically they unify, but grounding fails: no flight is both in
  // Paris-domain and Rome-domain.
  EXPECT_FALSE(match->has_value());
}

TEST_F(MatcherTest, WrongPartnerNameDoesNotMatch) {
  AddQuery(1, PairQuery("Kramer", "Jerry"));
  AddQuery(2, PairQuery("Elaine", "Kramer"));
  // Kramer wants Jerry, Elaine wants Kramer. Kramer's constraint
  // ('Jerry', f) has no provider.
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(2, pool_);
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->has_value());
}

TEST_F(MatcherTest, SelfSatisfyingQueryMatchesAlone) {
  AddQuery(1,
           "SELECT 'Solo', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest = 'Rome') CHOOSE 1");
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(1, pool_);
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->has_value());
  EXPECT_EQ(match->value().group, std::vector<QueryId>{1});
  EXPECT_EQ(match->value().answers.at(1)[0].at(1).int64_value(), 136);
}

TEST_F(MatcherTest, OwnHeadSatisfiesOwnConstraint) {
  // The constraint references the query's own contribution.
  AddQuery(1,
           "SELECT 'Solo', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest = 'Rome') AND "
           "('Solo', fno) IN ANSWER Reservation CHOOSE 1");
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(1, pool_);
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->has_value());
}

TEST_F(MatcherTest, StoredAnswerSatisfiesConstraint) {
  // Kramer already holds a reservation on 123 from an earlier round.
  ASSERT_TRUE(storage_
                  .Insert("Reservation", Tuple({Value::String("Kramer"),
                                                Value::Int64(123)}))
                  .ok());
  AddQuery(1, PairQuery("Jerry", "Kramer"));
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(1, pool_);
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->has_value());
  EXPECT_EQ(match->value().group, std::vector<QueryId>{1});
  EXPECT_EQ(match->value().answers.at(1)[0].at(1).int64_value(), 123);
  EXPECT_EQ(match->value().from_stored, 1u);
}

TEST_F(MatcherTest, StoredAnswersDisabledByConfig) {
  ASSERT_TRUE(storage_
                  .Insert("Reservation", Tuple({Value::String("Kramer"),
                                                Value::Int64(123)}))
                  .ok());
  config_.allow_stored_answers = false;
  AddQuery(1, PairQuery("Jerry", "Kramer"));
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(1, pool_);
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->has_value());
}

TEST_F(MatcherTest, GroupOfFourMatches) {
  const std::vector<std::string> group = {"A", "B", "C", "D"};
  QueryId id = 1;
  for (const auto& self : group) {
    std::string sql = "SELECT '" + self +
                      "', fno INTO ANSWER Reservation WHERE fno IN "
                      "(SELECT fno FROM Flights WHERE dest = 'Paris')";
    for (const auto& other : group) {
      if (other == self) continue;
      sql += " AND ('" + other + "', fno) IN ANSWER Reservation";
    }
    sql += " CHOOSE 1";
    AddQuery(id++, sql);
  }
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(4, pool_);
  ASSERT_TRUE(match.ok()) << match.status();
  ASSERT_TRUE(match->has_value());
  EXPECT_EQ(match->value().group.size(), 4u);
  // Everyone on the same flight.
  const Value& fno = match->value().answers.at(1)[0].at(1);
  for (QueryId q = 1; q <= 4; ++q) {
    EXPECT_EQ(match->value().answers.at(q)[0].at(1), fno);
  }
}

TEST_F(MatcherTest, PriceComparisonRestrictsChoice) {
  ASSERT_TRUE(storage_
                  .CreateTable("Prices",
                               Schema({{"fno", DataType::kInt64, false},
                                       {"price", DataType::kInt64, false}}))
                  .ok());
  for (auto [f, p] : std::vector<std::pair<int64_t, int64_t>>{
           {122, 900}, {123, 400}, {134, 950}}) {
    ASSERT_TRUE(storage_
                    .Insert("Prices",
                            Tuple({Value::Int64(f), Value::Int64(p)}))
                    .ok());
  }
  // Both want the same flight; Jerry additionally requires price <= 500
  // via a second domain on the same variable.
  AddQuery(1, PairQuery("Kramer", "Jerry"));
  AddQuery(2,
           "SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest = 'Paris') AND fno IN "
           "(SELECT fno FROM Prices WHERE price <= 500) AND "
           "('Kramer', fno) IN ANSWER Reservation CHOOSE 1");
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(2, pool_);
  ASSERT_TRUE(match.ok()) << match.status();
  ASSERT_TRUE(match->has_value());
  EXPECT_EQ(match->value().answers.at(2)[0].at(1).int64_value(), 123);
}

TEST_F(MatcherTest, AdjacentSeatCoordination) {
  ASSERT_TRUE(storage_
                  .CreateTable("Seats",
                               Schema({{"fno", DataType::kInt64, false},
                                       {"seat", DataType::kInt64, false}}))
                  .ok());
  for (int64_t seat = 1; seat <= 4; ++seat) {
    ASSERT_TRUE(storage_
                    .Insert("Seats",
                            Tuple({Value::Int64(122), Value::Int64(seat)}))
                    .ok());
  }
  ASSERT_TRUE(storage_
                  .CreateTable("SeatReservation",
                               Schema({{"traveler", DataType::kString, false},
                                       {"fno", DataType::kInt64, false},
                                       {"seat", DataType::kInt64, false}}))
                  .ok());
  // A < B so A takes the +1 constraint, B the -1 (middle-tier policy).
  AddQuery(1,
           "SELECT 'A', fno, seat INTO ANSWER SeatReservation WHERE "
           "fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') AND "
           "seat IN (SELECT seat FROM Seats WHERE fno = fno) AND "
           "('B', fno, seat + 1) IN ANSWER SeatReservation CHOOSE 1");
  AddQuery(2,
           "SELECT 'B', fno, seat INTO ANSWER SeatReservation WHERE "
           "fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') AND "
           "seat IN (SELECT seat FROM Seats WHERE fno = fno) AND "
           "('A', fno, seat - 1) IN ANSWER SeatReservation CHOOSE 1");
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(2, pool_);
  ASSERT_TRUE(match.ok()) << match.status();
  ASSERT_TRUE(match->has_value());
  const Tuple& a = match->value().answers.at(1)[0];
  const Tuple& b = match->value().answers.at(2)[0];
  EXPECT_EQ(a.at(1), b.at(1));  // same flight (122: only one with seats)
  EXPECT_EQ(b.at(2).int64_value(), a.at(2).int64_value() + 1);
}

TEST_F(MatcherTest, UnsafeQueryNeverGrounds) {
  // Variable with no domain predicate and no partner to bind it.
  AddQuery(1, "SELECT 'u', mystery INTO ANSWER Reservation CHOOSE 1");
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(1, pool_);
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->has_value());
}

TEST_F(MatcherTest, EmptyDomainNeverMatches) {
  AddQuery(1,
           "SELECT 'u', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest = 'Atlantis') CHOOSE 1");
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(1, pool_);
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->has_value());
}

TEST_F(MatcherTest, GroupSizeCapPreventsMatch) {
  config_.max_group_size = 1;
  AddQuery(1, PairQuery("Kramer", "Jerry"));
  AddQuery(2, PairQuery("Jerry", "Kramer"));
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(2, pool_);
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->has_value());
}

TEST_F(MatcherTest, SignatureIndexOffStillMatches) {
  config_.use_signature_index = false;
  AddQuery(1, PairQuery("Kramer", "Jerry"));
  AddQuery(2, PairQuery("Jerry", "Kramer"));
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(2, pool_);
  ASSERT_TRUE(match.ok());
  EXPECT_TRUE(match->has_value());
}

TEST_F(MatcherTest, ChooseIsSeededNondeterminism) {
  AddQuery(1, PairQuery("Kramer", "Jerry"));
  AddQuery(2, PairQuery("Jerry", "Kramer"));
  // Same seed -> same choice.
  config_.rng_seed = 5;
  Matcher m1(&storage_, config_);
  Matcher m2(&storage_, config_);
  auto r1 = m1.TryMatch(2, pool_);
  auto r2 = m2.TryMatch(2, pool_);
  ASSERT_TRUE(r1->has_value());
  ASSERT_TRUE(r2->has_value());
  EXPECT_EQ(r1->value().answers.at(1)[0], r2->value().answers.at(1)[0]);
}

TEST_F(MatcherTest, DifferentSeedsCoverMultipleFlights) {
  AddQuery(1, PairQuery("Kramer", "Jerry"));
  AddQuery(2, PairQuery("Jerry", "Kramer"));
  std::set<int64_t> seen;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    config_.rng_seed = seed;
    Matcher matcher(&storage_, config_);
    auto match = matcher.TryMatch(2, pool_);
    ASSERT_TRUE(match.ok());
    ASSERT_TRUE(match->has_value());
    seen.insert(match->value().answers.at(1)[0].at(1).int64_value());
  }
  // CHOOSE 1 nondeterminism: over 32 seeds we should see at least two of
  // the three Paris flights.
  EXPECT_GE(seen.size(), 2u);
}

TEST_F(MatcherTest, BacktracksOverUngroundableProvider) {
  // Two candidate partners claim to be 'Jerry': one wants Rome (cannot
  // share a Paris flight), one wants Paris. The matcher must reject the
  // Rome Jerry after grounding fails and settle on the Paris Jerry.
  AddQuery(1, PairQuery("Jerry", "Kramer", "Rome"));   // wrong Jerry
  AddQuery(2, PairQuery("Jerry", "Kramer", "Paris"));  // right Jerry
  AddQuery(3, PairQuery("Kramer", "Jerry", "Paris"));
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(3, pool_);
  ASSERT_TRUE(match.ok()) << match.status();
  ASSERT_TRUE(match->has_value());
  ASSERT_EQ(match->value().group.size(), 2u);
  // Group is {3, 2}; query 1 remains out.
  EXPECT_EQ(std::count(match->value().group.begin(),
                       match->value().group.end(), QueryId{1}),
            0);
}

TEST_F(MatcherTest, StarTopologyHubAndSpokes) {
  // Hub H constrains three spokes; each spoke constrains only H.
  // Arrival order: spokes first, hub last closes the group of four.
  const std::vector<std::string> spokes = {"S1", "S2", "S3"};
  QueryId id = 1;
  for (const auto& s : spokes) {
    AddQuery(id++,
             "SELECT '" + s + "', fno INTO ANSWER Reservation WHERE fno IN "
             "(SELECT fno FROM Flights WHERE dest = 'Paris') AND "
             "('Hub', fno) IN ANSWER Reservation CHOOSE 1");
  }
  std::string hub =
      "SELECT 'Hub', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest = 'Paris')";
  for (const auto& s : spokes) {
    hub += " AND ('" + s + "', fno) IN ANSWER Reservation";
  }
  hub += " CHOOSE 1";
  AddQuery(id, hub);
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(id, pool_);
  ASSERT_TRUE(match.ok()) << match.status();
  ASSERT_TRUE(match->has_value());
  EXPECT_EQ(match->value().group.size(), 4u);
  const Value& fno = match->value().answers.at(id)[0].at(1);
  for (QueryId q = 1; q <= id; ++q) {
    EXPECT_EQ(match->value().answers.at(q)[0].at(1), fno);
  }
}

TEST_F(MatcherTest, OneSpokeMatchesHubWithoutOthers) {
  // The hub requires all three spokes; one spoke alone must NOT match.
  AddQuery(1,
           "SELECT 'S1', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest = 'Paris') AND "
           "('Hub', fno) IN ANSWER Reservation CHOOSE 1");
  AddQuery(2,
           "SELECT 'Hub', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest = 'Paris') AND "
           "('S1', fno) IN ANSWER Reservation AND "
           "('S2', fno) IN ANSWER Reservation CHOOSE 1");
  Matcher matcher(&storage_, config_);
  // Hub's S2 constraint has no provider: no match from either root.
  auto from_spoke = matcher.TryMatch(1, pool_);
  ASSERT_TRUE(from_spoke.ok());
  EXPECT_FALSE(from_spoke->has_value());
  auto from_hub = matcher.TryMatch(2, pool_);
  ASSERT_TRUE(from_hub.ok());
  EXPECT_FALSE(from_hub->has_value());
}

TEST_F(MatcherTest, SharedHeadSatisfiesTwoConstraints) {
  // Two distinct queries both require Kramer's tuple; Kramer requires
  // both of theirs. One Kramer head serves both constraints.
  AddQuery(1,
           "SELECT 'A', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest = 'Paris') AND "
           "('Kramer', fno) IN ANSWER Reservation CHOOSE 1");
  AddQuery(2,
           "SELECT 'B', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest = 'Paris') AND "
           "('Kramer', fno) IN ANSWER Reservation CHOOSE 1");
  AddQuery(3,
           "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest = 'Paris') AND "
           "('A', fno) IN ANSWER Reservation AND "
           "('B', fno) IN ANSWER Reservation CHOOSE 1");
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(3, pool_);
  ASSERT_TRUE(match.ok()) << match.status();
  ASSERT_TRUE(match->has_value());
  EXPECT_EQ(match->value().group.size(), 3u);
  // Kramer contributed one tuple but discharged two constraints; the
  // installed list holds exactly three tuples.
  EXPECT_EQ(match->value().installed.size(), 3u);
}

TEST_F(MatcherTest, NaiveGroundingOrderStillCorrect) {
  config_.prefer_most_constrained = false;
  AddQuery(1, PairQuery("Kramer", "Jerry"));
  AddQuery(2, PairQuery("Jerry", "Kramer"));
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(2, pool_);
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->has_value());
  EXPECT_EQ(match->value().answers.at(1)[0].at(1),
            match->value().answers.at(2)[0].at(1));
}

TEST_F(MatcherTest, StepBudgetLeavesQueriesPending) {
  config_.max_steps = 1;
  // A provider chain long enough to exceed one step.
  AddQuery(1, PairQuery("Kramer", "Jerry"));
  AddQuery(2, PairQuery("Jerry", "Kramer"));
  Matcher matcher(&storage_, config_);
  auto match = matcher.TryMatch(2, pool_);
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->has_value());
}

TEST_F(MatcherTest, MissingRootIsNotFound) {
  Matcher matcher(&storage_, config_);
  EXPECT_EQ(matcher.TryMatch(99, pool_).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace youtopia
