#include "entangle/pending_pool.h"

#include <gtest/gtest.h>

namespace youtopia {
namespace {

std::shared_ptr<const EntangledQuery> MakeQuery(
    QueryId id, const std::string& head_rel,
    const std::string& constraint_rel = "") {
  EntangledQuery q;
  q.id = id;
  q.heads.push_back(AnswerAtom{head_rel, {Term::Variable(0)}});
  if (!constraint_rel.empty()) {
    q.constraints.push_back(AnswerAtom{constraint_rel, {Term::Variable(0)}});
  }
  q.var_names = {"x"};
  return std::make_shared<const EntangledQuery>(std::move(q));
}

TEST(PendingPoolTest, AddGetRemove) {
  PendingPool pool;
  pool.Add(MakeQuery(1, "R"));
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_NE(pool.Get(1), nullptr);
  auto removed = pool.Remove(1);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->id, 1u);
  EXPECT_FALSE(pool.Contains(1));
  EXPECT_EQ(pool.Remove(1), nullptr);
  EXPECT_EQ(pool.Get(1), nullptr);
}

TEST(PendingPoolTest, AllIdsInOrder) {
  PendingPool pool;
  pool.Add(MakeQuery(3, "R"));
  pool.Add(MakeQuery(1, "R"));
  pool.Add(MakeQuery(2, "R"));
  EXPECT_EQ(pool.AllIds(), (std::vector<QueryId>{1, 2, 3}));
}

TEST(PendingPoolTest, HeadSignatureIndex) {
  PendingPool pool;
  pool.Add(MakeQuery(1, "Reservation"));
  pool.Add(MakeQuery(2, "HotelReservation"));
  pool.Add(MakeQuery(3, "Reservation"));
  EXPECT_EQ(pool.QueriesWithHeadOn("Reservation"),
            (std::vector<QueryId>{1, 3}));
  // Case-insensitive.
  EXPECT_EQ(pool.QueriesWithHeadOn("RESERVATION"),
            (std::vector<QueryId>{1, 3}));
  EXPECT_TRUE(pool.QueriesWithHeadOn("Nope").empty());
}

TEST(PendingPoolTest, ConstraintSignatureIndex) {
  PendingPool pool;
  pool.Add(MakeQuery(1, "R", "S"));
  pool.Add(MakeQuery(2, "R", "R"));
  EXPECT_EQ(pool.QueriesWithConstraintOn("S"), (std::vector<QueryId>{1}));
  EXPECT_EQ(pool.QueriesWithConstraintOn("R"), (std::vector<QueryId>{2}));
}

TEST(PendingPoolTest, RemoveCleansIndexes) {
  PendingPool pool;
  pool.Add(MakeQuery(1, "R", "S"));
  pool.Remove(1);
  EXPECT_TRUE(pool.QueriesWithHeadOn("R").empty());
  EXPECT_TRUE(pool.QueriesWithConstraintOn("S").empty());
}

std::shared_ptr<const EntangledQuery> PairQueryIr(QueryId id,
                                                  const std::string& self,
                                                  const std::string& other) {
  EntangledQuery q;
  q.id = id;
  q.heads.push_back(AnswerAtom{
      "Reservation",
      {Term::Constant(Value::String(self)), Term::Variable(0)}});
  q.constraints.push_back(AnswerAtom{
      "Reservation",
      {Term::Constant(Value::String(other)), Term::Variable(0)}});
  q.var_names = {"fno"};
  return std::make_shared<const EntangledQuery>(std::move(q));
}

TEST(PendingPoolTest, CandidateProvidersFilterByConstant) {
  PendingPool pool;
  pool.Add(PairQueryIr(1, "Kramer", "Jerry"));
  pool.Add(PairQueryIr(2, "Elaine", "George"));
  pool.Add(PairQueryIr(3, "Jerry", "Kramer"));

  // Jerry's constraint is about 'Kramer': only query 1 has a head
  // contributing a 'Kramer' tuple.
  AnswerAtom about_kramer{
      "Reservation",
      {Term::Constant(Value::String("Kramer")), Term::Variable(0)}};
  EXPECT_EQ(pool.CandidateProviders(about_kramer),
            (std::vector<QueryId>{1}));

  AnswerAtom about_nobody{
      "Reservation",
      {Term::Constant(Value::String("Newman")), Term::Variable(0)}};
  EXPECT_TRUE(pool.CandidateProviders(about_nobody).empty());

  // A constraint with no constants falls back to all heads on the
  // relation.
  AnswerAtom all_vars{"Reservation",
                      {Term::Variable(0), Term::Variable(1)}};
  EXPECT_EQ(pool.CandidateProviders(all_vars).size(), 3u);

  AnswerAtom wrong_relation{
      "Hotel", {Term::Constant(Value::String("Kramer")), Term::Variable(0)}};
  EXPECT_TRUE(pool.CandidateProviders(wrong_relation).empty());
}

TEST(PendingPoolTest, CandidateProvidersIncludeVariableHeads) {
  // A head with a variable in position 0 can provide any constant.
  EntangledQuery q;
  q.id = 9;
  q.heads.push_back(
      AnswerAtom{"Reservation", {Term::Variable(0), Term::Variable(1)}});
  q.var_names = {"who", "fno"};
  PendingPool pool;
  pool.Add(std::make_shared<const EntangledQuery>(std::move(q)));
  AnswerAtom constraint{
      "Reservation",
      {Term::Constant(Value::String("Kramer")), Term::Variable(0)}};
  EXPECT_EQ(pool.CandidateProviders(constraint), (std::vector<QueryId>{9}));
}

TEST(PendingPoolTest, QueriesUnblockedByMatchesInstalledTuple) {
  PendingPool pool;
  pool.Add(PairQueryIr(1, "Kramer", "Jerry"));   // waits for Jerry
  pool.Add(PairQueryIr(2, "Elaine", "George"));  // waits for George

  // Installing ('Jerry', 122) can only unblock query 1.
  Tuple installed({Value::String("Jerry"), Value::Int64(122)});
  EXPECT_EQ(pool.QueriesUnblockedBy("Reservation", installed),
            (std::vector<QueryId>{1}));
  // Wrong relation: nobody.
  EXPECT_TRUE(pool.QueriesUnblockedBy("Hotel", installed).empty());
  // Arity mismatch: nobody.
  Tuple wrong_arity({Value::String("Jerry")});
  EXPECT_TRUE(pool.QueriesUnblockedBy("Reservation", wrong_arity).empty());
}

TEST(PendingPoolTest, IndexesCleanedOnRemove) {
  PendingPool pool;
  pool.Add(PairQueryIr(1, "Kramer", "Jerry"));
  pool.Remove(1);
  AnswerAtom about_kramer{
      "Reservation",
      {Term::Constant(Value::String("Kramer")), Term::Variable(0)}};
  EXPECT_TRUE(pool.CandidateProviders(about_kramer).empty());
  Tuple installed({Value::String("Jerry"), Value::Int64(1)});
  EXPECT_TRUE(pool.QueriesUnblockedBy("Reservation", installed).empty());
}

TEST(PendingPoolTest, MultiHeadQueryIndexedUnderAllRelations) {
  EntangledQuery q;
  q.id = 7;
  q.heads.push_back(AnswerAtom{"A", {Term::Variable(0)}});
  q.heads.push_back(AnswerAtom{"B", {Term::Variable(0)}});
  q.var_names = {"x"};
  PendingPool pool;
  pool.Add(std::make_shared<const EntangledQuery>(std::move(q)));
  EXPECT_EQ(pool.QueriesWithHeadOn("A"), (std::vector<QueryId>{7}));
  EXPECT_EQ(pool.QueriesWithHeadOn("B"), (std::vector<QueryId>{7}));
}

}  // namespace
}  // namespace youtopia
