#include "entangle/coordinator.h"

#include <gtest/gtest.h>

#include "entangle/normalizer.h"
#include "sql/parser.h"

namespace youtopia {
namespace {

using std::chrono::milliseconds;

class CoordinatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(storage_
                    .CreateTable("Flights",
                                 Schema({{"fno", DataType::kInt64, false},
                                         {"dest", DataType::kString, false}}))
                    .ok());
    for (auto [fno, dest] : std::vector<std::pair<int64_t, const char*>>{
             {122, "Paris"}, {123, "Paris"}, {136, "Rome"}}) {
      ASSERT_TRUE(storage_
                      .Insert("Flights", Tuple({Value::Int64(fno),
                                                Value::String(dest)}))
                      .ok());
    }
    ASSERT_TRUE(storage_
                    .CreateTable("Reservation",
                                 Schema({{"traveler", DataType::kString, false},
                                         {"fno", DataType::kInt64, false}}))
                    .ok());
    txns_ = std::make_unique<TxnManager>(&storage_);
    coordinator_ =
        std::make_unique<Coordinator>(&storage_, txns_.get(),
                                      CoordinatorConfig{});
  }

  EntangledQuery Parse(const std::string& sql, const std::string& owner) {
    auto stmt = Parser::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto q = Normalizer::Normalize(
        static_cast<const SelectStatement&>(*stmt.value()), 0, owner, sql);
    EXPECT_TRUE(q.ok()) << q.status();
    return q.TakeValue();
  }

  static std::string PairQuery(const std::string& self,
                               const std::string& other) {
    return "SELECT '" + self + "', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest='Paris') AND ('" + other +
           "', fno) IN ANSWER Reservation CHOOSE 1";
  }

  StorageEngine storage_;
  std::unique_ptr<TxnManager> txns_;
  std::unique_ptr<Coordinator> coordinator_;
};

TEST_F(CoordinatorTest, PairCoordination) {
  auto kramer =
      coordinator_->Submit(Parse(PairQuery("Kramer", "Jerry"), "Kramer"));
  ASSERT_TRUE(kramer.ok()) << kramer.status();
  EXPECT_FALSE(kramer->Done());
  EXPECT_EQ(coordinator_->pending_count(), 1u);
  EXPECT_EQ(kramer->Wait(milliseconds(10)).code(), StatusCode::kTimedOut);

  auto jerry =
      coordinator_->Submit(Parse(PairQuery("Jerry", "Kramer"), "Jerry"));
  ASSERT_TRUE(jerry.ok());
  EXPECT_TRUE(kramer->Done());
  EXPECT_TRUE(jerry->Done());
  EXPECT_TRUE(kramer->Wait(milliseconds(0)).ok());
  EXPECT_TRUE(jerry->Wait(milliseconds(0)).ok());
  EXPECT_EQ(coordinator_->pending_count(), 0u);

  ASSERT_EQ(kramer->Answers().size(), 1u);
  ASSERT_EQ(jerry->Answers().size(), 1u);
  EXPECT_EQ(kramer->Answers()[0].at(1), jerry->Answers()[0].at(1));

  // Answers are durably stored in the answer relation.
  EXPECT_EQ(storage_.TableSize("Reservation").value(), 2u);

  auto stats = coordinator_->stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.matched_queries, 2u);
  EXPECT_EQ(stats.matched_groups, 1u);
}

TEST_F(CoordinatorTest, IdsAreSequential) {
  auto h1 = coordinator_->Submit(Parse(PairQuery("A", "B"), "A"));
  auto h2 = coordinator_->Submit(Parse(PairQuery("C", "D"), "C"));
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_LT(h1->id(), h2->id());
}

TEST_F(CoordinatorTest, CancelPendingQuery) {
  auto handle = coordinator_->Submit(Parse(PairQuery("K", "J"), "K"));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(coordinator_->Cancel(handle->id()).ok());
  EXPECT_TRUE(handle->Done());
  EXPECT_EQ(handle->Wait(milliseconds(0)).code(), StatusCode::kAborted);
  EXPECT_EQ(coordinator_->pending_count(), 0u);
  EXPECT_EQ(coordinator_->Cancel(handle->id()).code(), StatusCode::kNotFound);
  EXPECT_EQ(coordinator_->stats().cancelled, 1u);

  // The cancelled query can no longer partner.
  auto other = coordinator_->Submit(Parse(PairQuery("J", "K"), "J"));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->Done());
}

TEST_F(CoordinatorTest, PendingIntrospection) {
  ASSERT_TRUE(coordinator_->Submit(Parse(PairQuery("K", "J"), "Kramer")).ok());
  auto pending = coordinator_->Pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].owner, "Kramer");
  EXPECT_NE(pending[0].sql.find("INTO ANSWER Reservation"),
            std::string::npos);
  EXPECT_NE(pending[0].ir.find("head:"), std::string::npos);
}

TEST_F(CoordinatorTest, InstallHookAbortRollsBackAndKeepsPending) {
  coordinator_->SetInstallHook(
      [](Transaction*, TxnManager*, const MatchResult&) {
        return Status::Aborted("injected failure");
      });
  auto h1 = coordinator_->Submit(Parse(PairQuery("K", "J"), "K"));
  auto h2 = coordinator_->Submit(Parse(PairQuery("J", "K"), "J"));
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  // Match found but install failed: nothing visible, both still pending.
  EXPECT_FALSE(h1->Done());
  EXPECT_FALSE(h2->Done());
  EXPECT_EQ(coordinator_->pending_count(), 2u);
  EXPECT_EQ(storage_.TableSize("Reservation").value(), 0u);
  EXPECT_GE(coordinator_->stats().failed_installs, 1u);

  // Removing the hook and retriggering completes the pair.
  coordinator_->SetInstallHook(nullptr);
  auto satisfied = coordinator_->RetriggerAll();
  ASSERT_TRUE(satisfied.ok()) << satisfied.status();
  EXPECT_EQ(satisfied.value(), 2u);
  EXPECT_TRUE(h1->Done());
  EXPECT_TRUE(h2->Done());
}

TEST_F(CoordinatorTest, InstallHookSuccessRuns) {
  size_t hook_calls = 0;
  coordinator_->SetInstallHook(
      [&hook_calls](Transaction*, TxnManager*, const MatchResult& match) {
        ++hook_calls;
        EXPECT_EQ(match.installed.size(), 2u);
        return Status::OK();
      });
  ASSERT_TRUE(coordinator_->Submit(Parse(PairQuery("K", "J"), "K")).ok());
  ASSERT_TRUE(coordinator_->Submit(Parse(PairQuery("J", "K"), "J")).ok());
  EXPECT_EQ(hook_calls, 1u);
}

TEST_F(CoordinatorTest, RetriggerAfterDataChange) {
  // No flight to Berlin yet: the pair cannot ground.
  auto h1 = coordinator_->Submit(Parse(
      "SELECT 'K', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Berlin') AND "
      "('J', fno) IN ANSWER Reservation CHOOSE 1", "K"));
  auto h2 = coordinator_->Submit(Parse(
      "SELECT 'J', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Berlin') AND "
      "('K', fno) IN ANSWER Reservation CHOOSE 1", "J"));
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(coordinator_->pending_count(), 2u);

  // A Berlin flight appears; retriggering matches the waiting pair —
  // "waits for an opportunity to retry" (paper §1).
  ASSERT_TRUE(storage_
                  .Insert("Flights", Tuple({Value::Int64(200),
                                            Value::String("Berlin")}))
                  .ok());
  auto satisfied = coordinator_->RetriggerAll();
  ASSERT_TRUE(satisfied.ok());
  EXPECT_EQ(satisfied.value(), 2u);
  EXPECT_TRUE(h1->Done());
  EXPECT_EQ(h1->Answers()[0].at(1).int64_value(), 200);
}

TEST_F(CoordinatorTest, CascadeRetriggerOnInstall) {
  // C constrains on B's reservation; B pairs with A. When A completes
  // the (A, B) pair, C's constraint is satisfiable from storage.
  auto c = coordinator_->Submit(Parse(
      "SELECT 'C', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('B', fno) IN ANSWER Reservation CHOOSE 1", "C"));
  ASSERT_TRUE(c.ok());
  auto b = coordinator_->Submit(Parse(PairQuery("B", "A"), "B"));
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(c->Done());
  auto a = coordinator_->Submit(Parse(PairQuery("A", "B"), "A"));
  ASSERT_TRUE(a.ok());

  // The A/B install retriggers C (possibly matched in the same group or
  // from stored answers in the cascade).
  EXPECT_TRUE(a->Done());
  EXPECT_TRUE(b->Done());
  EXPECT_TRUE(c->Done());
  EXPECT_EQ(c->Answers()[0].at(1), b->Answers()[0].at(1));
  EXPECT_EQ(coordinator_->pending_count(), 0u);
}

TEST_F(CoordinatorTest, AutoCreatesAnswerRelation) {
  ASSERT_TRUE(coordinator_
                  ->Submit(Parse(
                      "SELECT 'Solo', fno INTO ANSWER BrandNew WHERE fno IN "
                      "(SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1",
                      "Solo"))
                  .ok());
  EXPECT_TRUE(storage_.catalog().HasTable("BrandNew"));
  EXPECT_EQ(storage_.TableSize("BrandNew").value(), 1u);
}

TEST_F(CoordinatorTest, AutoCreateDisabledFails) {
  CoordinatorConfig config;
  config.auto_create_answer_tables = false;
  Coordinator strict(&storage_, txns_.get(), config);
  auto handle = strict.Submit(Parse(
      "SELECT 'Solo', fno INTO ANSWER Missing WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1", "Solo"));
  // The match is found but installation fails; query stays pending.
  ASSERT_TRUE(handle.ok());
  EXPECT_FALSE(handle->Done());
  EXPECT_GE(strict.stats().failed_installs, 1u);
}

TEST_F(CoordinatorTest, DuplicateTupleSharedBetweenQueries) {
  // Two identical direct bookings produce one stored tuple (set
  // semantics of the answer relation).
  const std::string sql =
      "SELECT 'Solo', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1";
  ASSERT_TRUE(coordinator_->Submit(Parse(sql, "Solo")).ok());
  ASSERT_TRUE(coordinator_->Submit(Parse(sql, "Solo")).ok());
  EXPECT_EQ(storage_.TableSize("Reservation").value(), 1u);
}

TEST_F(CoordinatorTest, StatsAccumulateMatchEffort) {
  ASSERT_TRUE(coordinator_->Submit(Parse(PairQuery("K", "J"), "K")).ok());
  ASSERT_TRUE(coordinator_->Submit(Parse(PairQuery("J", "K"), "J")).ok());
  auto stats = coordinator_->stats();
  EXPECT_GE(stats.match_calls, 2u);
  EXPECT_GT(stats.search_steps_total, 0u);
}

TEST_F(CoordinatorTest, RetriggerDependentsOfTargetsDomainTable) {
  auto pending = coordinator_->Submit(Parse(
      "SELECT 'K', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Berlin') CHOOSE 1", "K"));
  ASSERT_TRUE(pending.ok());
  EXPECT_FALSE(pending->Done());

  // Retriggering an unrelated table does nothing.
  auto unrelated = coordinator_->RetriggerDependentsOf("Hotels");
  ASSERT_TRUE(unrelated.ok());
  EXPECT_EQ(unrelated.value(), 0u);

  ASSERT_TRUE(storage_
                  .Insert("Flights", Tuple({Value::Int64(300),
                                            Value::String("Berlin")}))
                  .ok());
  auto satisfied = coordinator_->RetriggerDependentsOf("Flights");
  ASSERT_TRUE(satisfied.ok());
  EXPECT_EQ(satisfied.value(), 1u);
  EXPECT_TRUE(pending->Done());
}

TEST_F(CoordinatorTest, ExpireOlderThanWithdrawsStaleQueries) {
  auto stale = coordinator_->Submit(Parse(PairQuery("K", "J"), "K"));
  ASSERT_TRUE(stale.ok());
  // Nothing has aged past an hour.
  auto none = coordinator_->ExpireOlderThan(std::chrono::hours(1));
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value(), 0u);
  EXPECT_EQ(coordinator_->pending_count(), 1u);

  // Zero max-age expires everything pending.
  auto expired = coordinator_->ExpireOlderThan(milliseconds(0));
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired.value(), 1u);
  EXPECT_TRUE(stale->Done());
  EXPECT_EQ(stale->Wait(milliseconds(0)).code(), StatusCode::kTimedOut);
  EXPECT_EQ(coordinator_->pending_count(), 0u);

  // Expired queries no longer partner.
  auto partner = coordinator_->Submit(Parse(PairQuery("J", "K"), "J"));
  ASSERT_TRUE(partner.ok());
  EXPECT_FALSE(partner->Done());
}

TEST_F(CoordinatorTest, CompletedAtTracksOutcome) {
  auto kramer = coordinator_->Submit(Parse(PairQuery("K", "J"), "K"));
  ASSERT_TRUE(kramer.ok());
  EXPECT_FALSE(kramer->CompletedAt().has_value());
  const auto before = std::chrono::steady_clock::now();
  auto jerry = coordinator_->Submit(Parse(PairQuery("J", "K"), "J"));
  ASSERT_TRUE(jerry.ok());
  const auto after = std::chrono::steady_clock::now();
  auto completed = kramer->CompletedAt();
  ASSERT_TRUE(completed.has_value());
  EXPECT_GE(*completed, before);
  EXPECT_LE(*completed, after);

  // Cancellation also stamps completion.
  auto lone = coordinator_->Submit(Parse(PairQuery("X", "Y"), "X"));
  ASSERT_TRUE(lone.ok());
  ASSERT_TRUE(coordinator_->Cancel(lone->id()).ok());
  EXPECT_TRUE(lone->CompletedAt().has_value());
}

TEST_F(CoordinatorTest, PendingReportsAge) {
  ASSERT_TRUE(coordinator_->Submit(Parse(PairQuery("K", "J"), "K")).ok());
  auto pending = coordinator_->Pending();
  ASSERT_EQ(pending.size(), 1u);
  // Age is small but strictly tracked (measured from submission).
  EXPECT_LT(pending[0].age_micros, 10'000'000u);
}

TEST_F(CoordinatorTest, SubmitRejectsHeadlessQuery) {
  EntangledQuery empty;
  EXPECT_EQ(coordinator_->Submit(std::move(empty)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CoordinatorTest, OutcomeIsEmptyWhilePending) {
  auto handle = coordinator_->Submit(Parse(PairQuery("K", "J"), "K"));
  ASSERT_TRUE(handle.ok());
  // A pending query has no outcome — in particular not a placeholder
  // TimedOut that a caller could mistake for a terminal status.
  EXPECT_FALSE(handle->Outcome().has_value());

  auto partner = coordinator_->Submit(Parse(PairQuery("J", "K"), "J"));
  ASSERT_TRUE(partner.ok());
  ASSERT_TRUE(handle->Outcome().has_value());
  EXPECT_TRUE(handle->Outcome()->ok());
}

TEST_F(CoordinatorTest, OnCompleteObservesSatisfactionWithoutWait) {
  auto kramer = coordinator_->Submit(Parse(PairQuery("K", "J"), "K"));
  ASSERT_TRUE(kramer.ok());

  size_t fired = 0;
  Status seen_outcome;
  size_t seen_answers = 0;
  kramer->OnComplete([&](const EntangledHandle& done) {
    ++fired;
    seen_outcome = done.Outcome().value_or(Status::Internal("no outcome"));
    seen_answers = done.Answers().size();
  });
  EXPECT_EQ(fired, 0u);

  // Jerry's submission closes the group; Kramer's callback fires from
  // inside that call — Kramer never blocks in Wait.
  ASSERT_TRUE(coordinator_->Submit(Parse(PairQuery("J", "K"), "J")).ok());
  EXPECT_EQ(fired, 1u);
  EXPECT_TRUE(seen_outcome.ok());
  EXPECT_EQ(seen_answers, 1u);

  // Later activity never re-fires a delivered callback.
  ASSERT_TRUE(coordinator_->RetriggerAll().ok());
  EXPECT_EQ(fired, 1u);

  auto stats = coordinator_->stats();
  EXPECT_EQ(stats.callbacks_registered, 1u);
  EXPECT_EQ(stats.callbacks_fired, 1u);
}

TEST_F(CoordinatorTest, OnCompleteAfterCompletionFiresImmediately) {
  auto kramer = coordinator_->Submit(Parse(PairQuery("K", "J"), "K"));
  ASSERT_TRUE(coordinator_->Submit(Parse(PairQuery("J", "K"), "J")).ok());
  ASSERT_TRUE(kramer.ok());
  ASSERT_TRUE(kramer->Done());

  size_t fired = 0;
  kramer->OnComplete([&](const EntangledHandle& done) {
    ++fired;
    EXPECT_TRUE(done.Done());
  });
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(coordinator_->stats().callbacks_fired, 1u);
}

TEST_F(CoordinatorTest, OnCompleteFiresOnCancel) {
  auto handle = coordinator_->Submit(Parse(PairQuery("K", "J"), "K"));
  ASSERT_TRUE(handle.ok());
  size_t fired = 0;
  StatusCode seen = StatusCode::kOk;
  handle->OnComplete([&](const EntangledHandle& done) {
    ++fired;
    seen = done.Outcome().value_or(Status::OK()).code();
  });
  ASSERT_TRUE(coordinator_->Cancel(handle->id()).ok());
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(seen, StatusCode::kAborted);
}

TEST_F(CoordinatorTest, OnCompleteFiresOnExpire) {
  auto handle = coordinator_->Submit(Parse(PairQuery("K", "J"), "K"));
  ASSERT_TRUE(handle.ok());
  size_t fired = 0;
  StatusCode seen = StatusCode::kOk;
  handle->OnComplete([&](const EntangledHandle& done) {
    ++fired;
    seen = done.Outcome().value_or(Status::OK()).code();
  });
  auto expired = coordinator_->ExpireOlderThan(milliseconds(0));
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired.value(), 1u);
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(seen, StatusCode::kTimedOut);
}

TEST_F(CoordinatorTest, EveryRegistrationFiresExactlyOnce) {
  auto handle = coordinator_->Submit(Parse(PairQuery("K", "J"), "K"));
  ASSERT_TRUE(handle.ok());
  size_t first = 0, second = 0;
  handle->OnComplete([&](const EntangledHandle&) { ++first; });
  handle->OnComplete([&](const EntangledHandle&) { ++second; });
  ASSERT_TRUE(coordinator_->Submit(Parse(PairQuery("J", "K"), "J")).ok());
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(coordinator_->stats().callbacks_fired, 2u);
}

TEST_F(CoordinatorTest, CallbackMayReenterCoordinator) {
  auto kramer = coordinator_->Submit(Parse(PairQuery("K", "J"), "K"));
  ASSERT_TRUE(kramer.ok());
  // The callback submits a follow-up query: callbacks run outside the
  // coordinator lock, so re-entry must not deadlock.
  bool followup_done = false;
  kramer->OnComplete([&](const EntangledHandle&) {
    auto followup = coordinator_->Submit(Parse(
        "SELECT 'K', fno INTO ANSWER Reservation WHERE fno IN "
        "(SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1", "K"));
    ASSERT_TRUE(followup.ok());
    followup_done = followup->Done();
  });
  ASSERT_TRUE(coordinator_->Submit(Parse(PairQuery("J", "K"), "J")).ok());
  EXPECT_TRUE(followup_done);
}

TEST_F(CoordinatorTest, SubmitAllClosesGroupInOneRound) {
  const std::vector<std::string> group = {"A", "B", "C"};
  std::vector<EntangledQuery> queries;
  for (size_t i = 0; i < group.size(); ++i) {
    std::string sql = "SELECT '" + group[i] +
                      "', fno INTO ANSWER Reservation WHERE fno IN "
                      "(SELECT fno FROM Flights WHERE dest='Paris')";
    for (size_t j = 0; j < group.size(); ++j) {
      if (i == j) continue;
      sql += " AND ('" + group[j] + "', fno) IN ANSWER Reservation";
    }
    sql += " CHOOSE 1";
    queries.push_back(Parse(sql, group[i]));
  }

  auto handles = coordinator_->SubmitAll(std::move(queries));
  ASSERT_TRUE(handles.ok()) << handles.status();
  ASSERT_EQ(handles->size(), 3u);
  for (const auto& handle : *handles) {
    EXPECT_TRUE(handle.Done());
    ASSERT_TRUE(handle.Outcome().has_value());
    EXPECT_TRUE(handle.Outcome()->ok());
  }
  // Everyone flies on the same flight.
  EXPECT_EQ((*handles)[0].Answers()[0].at(1), (*handles)[1].Answers()[0].at(1));
  EXPECT_EQ((*handles)[1].Answers()[0].at(1), (*handles)[2].Answers()[0].at(1));

  auto stats = coordinator_->stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_queries, 3u);
  EXPECT_EQ(stats.matched_groups, 1u);
  EXPECT_EQ(stats.matched_queries, 3u);
  // The single matching round: the first root sees the whole batch in
  // the pool and closes the group on its first TryMatch — sequential
  // submission of the same group costs one match call per member.
  EXPECT_EQ(stats.match_calls, 1u);
}

TEST_F(CoordinatorTest, SubmitAllLeavesUnmatchablePending) {
  std::vector<EntangledQuery> queries;
  queries.push_back(Parse(PairQuery("K", "J"), "K"));
  queries.push_back(Parse(PairQuery("J", "K"), "J"));
  queries.push_back(Parse(PairQuery("Lonely", "Ghost"), "Lonely"));
  auto handles = coordinator_->SubmitAll(std::move(queries));
  ASSERT_TRUE(handles.ok());
  EXPECT_TRUE((*handles)[0].Done());
  EXPECT_TRUE((*handles)[1].Done());
  EXPECT_FALSE((*handles)[2].Done());
  EXPECT_EQ(coordinator_->pending_count(), 1u);
}

TEST_F(CoordinatorTest, SubmitAllRejectsInvalidBatchAtomically) {
  std::vector<EntangledQuery> queries;
  queries.push_back(Parse(PairQuery("K", "J"), "K"));
  queries.emplace_back();  // headless
  auto handles = coordinator_->SubmitAll(std::move(queries));
  EXPECT_EQ(handles.status().code(), StatusCode::kInvalidArgument);
  // Nothing from the batch was registered.
  EXPECT_EQ(coordinator_->pending_count(), 0u);
  EXPECT_EQ(coordinator_->stats().submitted, 0u);
  EXPECT_EQ(coordinator_->stats().batches, 0u);
}

TEST_F(CoordinatorTest, SubmitAllEmptyBatchIsTrivial) {
  auto handles = coordinator_->SubmitAll({});
  ASSERT_TRUE(handles.ok());
  EXPECT_TRUE(handles->empty());
  EXPECT_EQ(coordinator_->stats().batches, 1u);
  EXPECT_EQ(coordinator_->stats().batched_queries, 0u);
}

}  // namespace
}  // namespace youtopia
