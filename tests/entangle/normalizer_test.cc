#include "entangle/normalizer.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace youtopia {
namespace {

Result<EntangledQuery> Normalize(const std::string& sql) {
  auto stmt = Parser::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  const auto& select = static_cast<const SelectStatement&>(*stmt.value());
  return Normalizer::Normalize(select, 1, "tester", sql);
}

TEST(NormalizerTest, PaperQueryTranslates) {
  auto q = Normalize(
      "SELECT 'Kramer', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
      "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1");
  ASSERT_TRUE(q.ok()) << q.status();

  ASSERT_EQ(q->heads.size(), 1u);
  EXPECT_EQ(q->heads[0].relation, "Reservation");
  ASSERT_EQ(q->heads[0].terms.size(), 2u);
  EXPECT_EQ(q->heads[0].terms[0].constant.string_value(), "Kramer");
  EXPECT_TRUE(q->heads[0].terms[1].is_variable());

  ASSERT_EQ(q->constraints.size(), 1u);
  EXPECT_EQ(q->constraints[0].terms[0].constant.string_value(), "Jerry");
  // Same variable in head and constraint.
  EXPECT_EQ(q->constraints[0].terms[1].var, q->heads[0].terms[1].var);

  ASSERT_EQ(q->domains.size(), 1u);
  EXPECT_EQ(q->domains[0].table, "Flights");
  EXPECT_EQ(q->domains[0].output_column, "fno");
  ASSERT_EQ(q->domains[0].conditions.size(), 1u);
  EXPECT_EQ(q->domains[0].conditions[0].column, "dest");
  EXPECT_EQ(q->domains[0].conditions[0].op, BinaryOp::kEq);
  EXPECT_EQ(q->domains[0].conditions[0].rhs.constant.string_value(), "Paris");

  EXPECT_EQ(q->choose, 1);
  EXPECT_EQ(q->owner, "tester");
  EXPECT_EQ(q->num_vars(), 1u);
  EXPECT_EQ(q->var_names[0], "fno");
  EXPECT_TRUE(q->UnboundVars().empty());
}

TEST(NormalizerTest, VariableIdentityIsCaseInsensitive) {
  auto q = Normalize(
      "SELECT 'u', FNO INTO ANSWER R WHERE fno IN (SELECT fno FROM F)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars(), 1u);
}

TEST(NormalizerTest, MultiHeadMultiRelation) {
  auto q = Normalize(
      "SELECT 'J', fno INTO ANSWER Reservation, "
      "'J', hid INTO ANSWER HotelReservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
      "AND hid IN (SELECT hid FROM Hotels WHERE city='Paris') "
      "AND ('K', fno) IN ANSWER Reservation "
      "AND ('K', hid) IN ANSWER HotelReservation CHOOSE 1");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->heads.size(), 2u);
  EXPECT_EQ(q->constraints.size(), 2u);
  EXPECT_EQ(q->domains.size(), 2u);
  EXPECT_EQ(q->num_vars(), 2u);
}

TEST(NormalizerTest, AffineTermsInConstraints) {
  auto q = Normalize(
      "SELECT 'u', fno, seat INTO ANSWER S "
      "WHERE fno IN (SELECT fno FROM Flights) "
      "AND seat IN (SELECT seat FROM Seats WHERE fno = fno) "
      "AND ('v', fno, seat + 1) IN ANSWER S");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->constraints.size(), 1u);
  const Term& seat_term = q->constraints[0].terms[2];
  EXPECT_TRUE(seat_term.is_variable());
  EXPECT_EQ(seat_term.offset, 1);
  // Correlated domain condition references the fno variable.
  ASSERT_EQ(q->domains.size(), 2u);
  const auto& seats = q->domains[1];
  ASSERT_EQ(seats.conditions.size(), 1u);
  EXPECT_TRUE(seats.conditions[0].rhs.is_variable());
}

TEST(NormalizerTest, SeatMinusOffset) {
  auto q = Normalize(
      "SELECT 'u', seat INTO ANSWER S WHERE "
      "seat IN (SELECT seat FROM Seats) AND ('v', seat - 1) IN ANSWER S");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->constraints[0].terms[1].offset, -1);
}

TEST(NormalizerTest, ComparisonsBecomeVarComparisons) {
  auto q = Normalize(
      "SELECT 'u', p INTO ANSWER R WHERE p IN (SELECT price FROM Flights) "
      "AND p <= 500");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->comparisons.size(), 1u);
  EXPECT_EQ(q->comparisons[0].op, BinaryOp::kLte);
  EXPECT_EQ(q->comparisons[0].rhs.constant.int64_value(), 500);
}

TEST(NormalizerTest, DomainConditionComparisonsAllowed) {
  auto q = Normalize(
      "SELECT 'u', fno INTO ANSWER R WHERE fno IN "
      "(SELECT fno FROM Flights WHERE price <= 500 AND day = 3)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->domains[0].conditions.size(), 2u);
  EXPECT_EQ(q->domains[0].conditions[0].op, BinaryOp::kLte);
}

TEST(NormalizerTest, FlippedDomainConditionNormalized) {
  // `500 >= price` is stored as `price <= 500`.
  auto q = Normalize(
      "SELECT 'u', fno INTO ANSWER R WHERE fno IN "
      "(SELECT fno FROM Flights WHERE 500 >= price)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->domains[0].conditions[0].column, "price");
  EXPECT_EQ(q->domains[0].conditions[0].op, BinaryOp::kLte);
}

TEST(NormalizerTest, DefaultChooseIsOne) {
  auto q = Normalize(
      "SELECT 'u', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->choose, 1);
}

TEST(NormalizerTest, ChooseGreaterThanOneUnsupported) {
  auto q = Normalize(
      "SELECT 'u', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F) "
      "CHOOSE 2");
  EXPECT_EQ(q.status().code(), StatusCode::kNotImplemented);
}

TEST(NormalizerTest, RegularSelectRejected) {
  auto q = Normalize("SELECT fno FROM Flights");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(NormalizerTest, FromClauseRejected) {
  auto q = Normalize("SELECT 'u', fno INTO ANSWER R FROM Flights");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(NormalizerTest, NegatedAnswerConstraintRejected) {
  auto q = Normalize(
      "SELECT 'u', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F) "
      "AND ('v', fno) NOT IN ANSWER R");
  EXPECT_EQ(q.status().code(), StatusCode::kNotImplemented);
}

TEST(NormalizerTest, NegatedSubqueryRejected) {
  auto q = Normalize(
      "SELECT 'u', fno INTO ANSWER R WHERE fno NOT IN (SELECT fno FROM F)");
  EXPECT_EQ(q.status().code(), StatusCode::kNotImplemented);
}

TEST(NormalizerTest, DisjunctionInWhereRejected) {
  auto q = Normalize(
      "SELECT 'u', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM F) "
      "OR fno IN (SELECT fno FROM G)");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(NormalizerTest, QualifiedVariableRejected) {
  auto q = Normalize("SELECT 'u', t.fno INTO ANSWER R");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(NormalizerTest, MultiTableSubqueryRejected) {
  auto q = Normalize(
      "SELECT 'u', fno INTO ANSWER R WHERE fno IN "
      "(SELECT fno FROM A, B)");
  EXPECT_EQ(q.status().code(), StatusCode::kNotImplemented);
}

TEST(NormalizerTest, UnboundVarsDetected) {
  auto q = Normalize("SELECT 'u', mystery INTO ANSWER R");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->UnboundVars().size(), 1u);
}

TEST(NormalizerTest, ToStringMentionsEverything) {
  auto q = Normalize(
      "SELECT 'Kramer', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
      "AND ('Jerry', fno) IN ANSWER Reservation AND fno < 200 CHOOSE 1");
  ASSERT_TRUE(q.ok());
  const std::string dump = q->ToString();
  EXPECT_NE(dump.find("head:"), std::string::npos);
  EXPECT_NE(dump.find("constraint:"), std::string::npos);
  EXPECT_NE(dump.find("domain:"), std::string::npos);
  EXPECT_NE(dump.find("compare:"), std::string::npos);
  EXPECT_NE(dump.find("Reservation('Kramer', fno)"), std::string::npos);
}

}  // namespace
}  // namespace youtopia
