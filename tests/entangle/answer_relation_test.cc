#include "entangle/answer_relation.h"

#include <gtest/gtest.h>

namespace youtopia {
namespace {

class AnswerRelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    txns_ = std::make_unique<TxnManager>(&storage_);
    manager_ = std::make_unique<AnswerRelationManager>(&storage_, true);
  }

  Tuple Reservation(const std::string& who, int64_t fno) {
    return Tuple({Value::String(who), Value::Int64(fno)});
  }

  StorageEngine storage_;
  std::unique_ptr<TxnManager> txns_;
  std::unique_ptr<AnswerRelationManager> manager_;
};

TEST_F(AnswerRelationTest, AutoCreatesTypedFromPrototype) {
  ASSERT_TRUE(
      manager_->EnsureRelation("Reservation", Reservation("K", 122)).ok());
  auto info = storage_.catalog().GetTable("Reservation");
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->schema.num_columns(), 2u);
  EXPECT_EQ(info->schema.column(0).type, DataType::kString);
  EXPECT_EQ(info->schema.column(1).type, DataType::kInt64);
  EXPECT_EQ(info->schema.column(0).name, "c0");
}

TEST_F(AnswerRelationTest, EnsureChecksArityOfExistingTable) {
  ASSERT_TRUE(storage_
                  .CreateTable("Reservation",
                               Schema({{"traveler", DataType::kString, false}}))
                  .ok());
  EXPECT_FALSE(
      manager_->EnsureRelation("Reservation", Reservation("K", 122)).ok());
}

TEST_F(AnswerRelationTest, AutoCreateDisabled) {
  AnswerRelationManager strict(&storage_, /*auto_create=*/false);
  EXPECT_EQ(strict.EnsureRelation("Missing", Reservation("K", 1)).code(),
            StatusCode::kNotFound);
}

TEST_F(AnswerRelationTest, NullPrototypeColumnDefaultsToString) {
  Tuple with_null({Value::Null(), Value::Int64(1)});
  ASSERT_TRUE(manager_->EnsureRelation("R", with_null).ok());
  EXPECT_EQ(storage_.catalog().GetTable("R")->schema.column(0).type,
            DataType::kString);
}

TEST_F(AnswerRelationTest, InstallInsertsOnce) {
  auto txn = txns_->Begin();
  ASSERT_TRUE(manager_->Install(txn.get(), txns_.get(), "Reservation",
                                Reservation("K", 122)).ok());
  ASSERT_TRUE(manager_->Install(txn.get(), txns_.get(), "Reservation",
                                Reservation("K", 122)).ok());
  ASSERT_TRUE(manager_->Install(txn.get(), txns_.get(), "Reservation",
                                Reservation("J", 122)).ok());
  ASSERT_TRUE(txns_->Commit(txn.get()).ok());
  EXPECT_EQ(storage_.TableSize("Reservation").value(), 2u);
}

TEST_F(AnswerRelationTest, InstallDedupUsesIndexWhenPresent) {
  ASSERT_TRUE(storage_
                  .CreateTable("Reservation",
                               Schema({{"traveler", DataType::kString, false},
                                       {"fno", DataType::kInt64, false}}))
                  .ok());
  ASSERT_TRUE(storage_.CreateIndex("Reservation", "traveler").ok());
  auto txn = txns_->Begin();
  ASSERT_TRUE(manager_->Install(txn.get(), txns_.get(), "Reservation",
                                Reservation("K", 122)).ok());
  // Same traveler, different flight: index bucket shared, must insert.
  ASSERT_TRUE(manager_->Install(txn.get(), txns_.get(), "Reservation",
                                Reservation("K", 123)).ok());
  // Exact duplicate: skipped.
  ASSERT_TRUE(manager_->Install(txn.get(), txns_.get(), "Reservation",
                                Reservation("K", 122)).ok());
  ASSERT_TRUE(txns_->Commit(txn.get()).ok());
  EXPECT_EQ(storage_.TableSize("Reservation").value(), 2u);
}

TEST_F(AnswerRelationTest, InstallRollsBackWithTxn) {
  auto txn = txns_->Begin();
  ASSERT_TRUE(manager_->Install(txn.get(), txns_.get(), "Reservation",
                                Reservation("K", 122)).ok());
  ASSERT_TRUE(txns_->Abort(txn.get()).ok());
  EXPECT_EQ(storage_.TableSize("Reservation").value(), 0u);
}

TEST_F(AnswerRelationTest, InstallValidatesAgainstExistingSchema) {
  ASSERT_TRUE(storage_
                  .CreateTable("Typed",
                               Schema({{"n", DataType::kInt64, false}}))
                  .ok());
  auto txn = txns_->Begin();
  EXPECT_FALSE(manager_->Install(txn.get(), txns_.get(), "Typed",
                                 Tuple({Value::String("oops")})).ok());
  ASSERT_TRUE(txns_->Abort(txn.get()).ok());
}

}  // namespace
}  // namespace youtopia
