#include "net/protocol.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"

namespace youtopia::net {
namespace {

// ------------------------------------------------- randomized generators

Value RandomValue(Random* rng) {
  switch (rng->NextBelow(5)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng->NextBool());
    case 2:
      return Value::Int64(static_cast<int64_t>(rng->Next()));
    case 3:
      // Full-mantissa doubles (the dump/restore corruption case), scaled
      // across magnitudes; bit-pattern generation would produce NaNs,
      // which never compare equal.
      return Value::Double((rng->NextDouble() - 0.5) *
                           std::pow(10.0, rng->NextInRange(-30, 30)));
    default: {
      std::string s;
      const size_t len = rng->NextBelow(24);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng->NextInRange(0, 255)));
      }
      return Value::String(std::move(s));
    }
  }
}

Tuple RandomTuple(Random* rng) {
  std::vector<Value> values;
  const size_t arity = rng->NextBelow(6);
  for (size_t i = 0; i < arity; ++i) values.push_back(RandomValue(rng));
  return Tuple(std::move(values));
}

std::vector<Tuple> RandomTuples(Random* rng, size_t max = 8) {
  std::vector<Tuple> tuples;
  const size_t count = rng->NextBelow(max);
  for (size_t i = 0; i < count; ++i) tuples.push_back(RandomTuple(rng));
  return tuples;
}

Status RandomStatus(Random* rng) {
  const auto code = static_cast<StatusCode>(
      rng->NextBelow(static_cast<uint64_t>(StatusCode::kNotImplemented) + 1));
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, "error #" + std::to_string(rng->NextBelow(1000)));
}

std::string RandomSql(Random* rng) {
  std::string sql = "SELECT c" + std::to_string(rng->NextBelow(100)) +
                    " FROM t WHERE x = " + std::to_string(rng->Next());
  return sql;
}

QueryResult RandomResult(Random* rng) {
  QueryResult result;
  const size_t ncols = rng->NextBelow(5);
  for (size_t i = 0; i < ncols; ++i) {
    result.column_names.push_back("col" + std::to_string(i));
  }
  result.rows = RandomTuples(rng);
  result.affected_rows = rng->NextBelow(1000);
  return result;
}

WireHandle RandomHandle(Random* rng) {
  WireHandle handle;
  handle.query_id = rng->Next();
  handle.done = rng->NextBool();
  handle.outcome = handle.done ? RandomStatus(rng) : Status::OK();
  handle.answers = handle.done ? RandomTuples(rng) : std::vector<Tuple>{};
  return handle;
}

bool Equal(const QueryResult& a, const QueryResult& b) {
  return a.column_names == b.column_names && a.rows == b.rows &&
         a.affected_rows == b.affected_rows;
}

/// Encodes `msg`, reassembles it through a FrameAssembler fed in random
/// chunks, and returns the decoded copy.
template <typename Message>
Message RoundTrip(const Message& msg, Random* rng) {
  const std::string frame = EncodeFrame(msg);
  FrameAssembler assembler;
  size_t fed = 0;
  while (fed < frame.size()) {
    const size_t chunk =
        std::min(frame.size() - fed, 1 + rng->NextBelow(frame.size()));
    assembler.Append(frame.data() + fed, chunk);
    fed += chunk;
  }
  auto next = assembler.Next();
  EXPECT_TRUE(next.ok()) << next.status();
  EXPECT_TRUE(next->has_value());
  EXPECT_EQ((*next)->type, Message::kType);
  auto decoded = DecodePayload<Message>((*next)->payload);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  // Exactly one frame; nothing left over.
  auto after = assembler.Next();
  EXPECT_TRUE(after.ok() && !after->has_value());
  return decoded.ok() ? decoded.TakeValue() : Message{};
}

// ------------------------------------------------------------ round trips

TEST(ProtocolTest, ExecuteRoundTrips) {
  Random rng(1);
  for (int iter = 0; iter < 100; ++iter) {
    ExecuteRequest req;
    req.request_id = rng.Next();
    req.sql = RandomSql(&rng);
    ExecuteRequest back = RoundTrip(req, &rng);
    EXPECT_EQ(back.request_id, req.request_id);
    EXPECT_EQ(back.sql, req.sql);

    ExecuteResponse resp;
    resp.request_id = rng.Next();
    resp.status = RandomStatus(&rng);
    resp.result = RandomResult(&rng);
    ExecuteResponse rback = RoundTrip(resp, &rng);
    EXPECT_EQ(rback.request_id, resp.request_id);
    EXPECT_EQ(rback.status, resp.status);
    EXPECT_TRUE(Equal(rback.result, resp.result));
  }
}

TEST(ProtocolTest, ScriptAndCancelRoundTrip) {
  Random rng(2);
  for (int iter = 0; iter < 50; ++iter) {
    ScriptRequest req{rng.Next(), RandomSql(&rng) + "; " + RandomSql(&rng)};
    ScriptRequest back = RoundTrip(req, &rng);
    EXPECT_EQ(back.request_id, req.request_id);
    EXPECT_EQ(back.sql, req.sql);

    ScriptResponse resp{rng.Next(), RandomStatus(&rng)};
    ScriptResponse rback = RoundTrip(resp, &rng);
    EXPECT_EQ(rback.request_id, resp.request_id);
    EXPECT_EQ(rback.status, resp.status);

    CancelRequest cancel{rng.Next(), rng.Next()};
    CancelRequest cback = RoundTrip(cancel, &rng);
    EXPECT_EQ(cback.request_id, cancel.request_id);
    EXPECT_EQ(cback.query_id, cancel.query_id);

    CancelResponse cresp{rng.Next(), RandomStatus(&rng)};
    EXPECT_EQ(RoundTrip(cresp, &rng).status, cresp.status);
  }
}

TEST(ProtocolTest, SubmitRoundTrips) {
  Random rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    SubmitRequest req;
    req.request_id = rng.Next();
    req.owner = "user" + std::to_string(rng.NextBelow(50));
    req.sql = RandomSql(&rng);
    SubmitRequest back = RoundTrip(req, &rng);
    EXPECT_EQ(back.owner, req.owner);
    EXPECT_EQ(back.sql, req.sql);

    SubmitResponse resp;
    resp.request_id = rng.Next();
    resp.status = RandomStatus(&rng);
    resp.handle = RandomHandle(&rng);
    SubmitResponse rback = RoundTrip(resp, &rng);
    EXPECT_EQ(rback.request_id, resp.request_id);
    EXPECT_EQ(rback.status, resp.status);
    EXPECT_EQ(rback.handle, resp.handle);
  }
}

TEST(ProtocolTest, SubmitBatchRoundTrips) {
  Random rng(4);
  for (int iter = 0; iter < 50; ++iter) {
    SubmitBatchRequest req;
    req.request_id = rng.Next();
    const size_t n = 1 + rng.NextBelow(5);
    for (size_t i = 0; i < n; ++i) {
      req.owners.push_back("o" + std::to_string(i));
      req.statements.push_back(RandomSql(&rng));
    }
    SubmitBatchRequest back = RoundTrip(req, &rng);
    EXPECT_EQ(back.request_id, req.request_id);
    EXPECT_EQ(back.owners, req.owners);
    EXPECT_EQ(back.statements, req.statements);

    SubmitBatchResponse resp;
    resp.request_id = rng.Next();
    resp.status = RandomStatus(&rng);
    for (size_t i = 0; i < n; ++i) resp.handles.push_back(RandomHandle(&rng));
    SubmitBatchResponse rback = RoundTrip(resp, &rng);
    EXPECT_EQ(rback.status, resp.status);
    EXPECT_EQ(rback.handles, resp.handles);
  }
}

TEST(ProtocolTest, RunAndPushRoundTrips) {
  Random rng(5);
  for (int iter = 0; iter < 100; ++iter) {
    RunRequest req;
    req.request_id = rng.Next();
    req.owner = "runner";
    req.sql = RandomSql(&rng);
    EXPECT_EQ(RoundTrip(req, &rng).sql, req.sql);

    RunResponse resp;
    resp.request_id = rng.Next();
    resp.status = RandomStatus(&rng);
    resp.entangled = rng.NextBool();
    if (resp.entangled) {
      resp.handle = RandomHandle(&rng);
    } else {
      resp.result = RandomResult(&rng);
    }
    RunResponse rback = RoundTrip(resp, &rng);
    EXPECT_EQ(rback.status, resp.status);
    EXPECT_EQ(rback.entangled, resp.entangled);
    EXPECT_TRUE(Equal(rback.result, resp.result));
    EXPECT_EQ(rback.handle, resp.handle);

    CompletionPush push;
    push.query_id = rng.Next();
    push.outcome = RandomStatus(&rng);
    push.answers = RandomTuples(&rng);
    CompletionPush pback = RoundTrip(push, &rng);
    EXPECT_EQ(pback.query_id, push.query_id);
    EXPECT_EQ(pback.outcome, push.outcome);
    EXPECT_EQ(pback.answers, push.answers);
  }
}

TEST(ProtocolTest, DoubleValuesSurviveBitExactly) {
  // The values the dump round-trip bugfix protects; the wire must not
  // reintroduce text-formatting loss.
  for (double v : {0.1, 1.0 / 3.0, 5e-324, 1.7976931348623157e308,
                   2.2250738585072014e-308, -0.0}) {
    WireWriter w;
    w.PutValue(Value::Double(v));
    WireReader r(w.bytes());
    Value back;
    ASSERT_TRUE(r.GetValue(&back));
    EXPECT_EQ(back, Value::Double(v));
  }
}

// --------------------------------------------------------- malformed input

TEST(ProtocolTest, TruncatedPayloadRejected) {
  Random rng(6);
  ExecuteResponse resp;
  resp.request_id = 7;
  resp.status = Status::OK();
  resp.result = RandomResult(&rng);
  WireWriter w;
  resp.Encode(&w);
  const std::string& payload = w.bytes();
  // Every strict prefix must decode cleanly as an error, never crash or
  // return a half-read message.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = DecodePayload<ExecuteResponse>(
        std::string_view(payload).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ProtocolTest, TrailingBytesRejected) {
  ExecuteRequest req{1, "SELECT 1"};
  WireWriter w;
  req.Encode(&w);
  std::string payload = w.Take();
  payload.push_back('\0');
  EXPECT_FALSE(DecodePayload<ExecuteRequest>(payload).ok());
}

TEST(ProtocolTest, BadValueTagRejected) {
  WireWriter w;
  w.PutU8(200);  // no such DataType
  WireReader r(w.bytes());
  Value v;
  EXPECT_FALSE(r.GetValue(&v));
  EXPECT_FALSE(r.ok());
}

TEST(ProtocolTest, LyingTupleCountRejected) {
  // Claims 2^31 values but carries none: must fail fast, not allocate.
  WireWriter w;
  w.PutU32(0x80000000u);
  WireReader r(w.bytes());
  Tuple t;
  EXPECT_FALSE(r.GetTuple(&t));
}

TEST(ProtocolTest, OversizedFrameLengthRejected) {
  FrameAssembler assembler(/*max_frame_bytes=*/1024);
  WireWriter header;
  header.PutU32(2048);
  assembler.Append(header.bytes());
  auto next = assembler.Next();
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, ZeroLengthFrameRejected) {
  FrameAssembler assembler;
  WireWriter header;
  header.PutU32(0);
  assembler.Append(header.bytes());
  EXPECT_FALSE(assembler.Next().ok());
}

TEST(ProtocolTest, PartialFrameIsNotAFrame) {
  ExecuteRequest req{42, "SELECT x FROM t"};
  const std::string frame = EncodeFrame(req);
  FrameAssembler assembler;
  // Feed everything but the last byte: incomplete, not an error.
  assembler.Append(frame.data(), frame.size() - 1);
  auto next = assembler.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  // The final byte completes it.
  assembler.Append(frame.data() + frame.size() - 1, 1);
  next = assembler.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  auto decoded = DecodePayload<ExecuteRequest>((*next)->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sql, req.sql);
}

TEST(ProtocolTest, ByteAtATimeStreamOfManyFrames) {
  Random rng(7);
  std::string stream;
  std::vector<std::string> sqls;
  for (int i = 0; i < 20; ++i) {
    sqls.push_back(RandomSql(&rng));
    stream += EncodeFrame(ExecuteRequest{static_cast<uint64_t>(i), sqls.back()});
  }
  FrameAssembler assembler;
  size_t seen = 0;
  for (char c : stream) {
    assembler.Append(&c, 1);
    for (;;) {
      auto next = assembler.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      auto decoded = DecodePayload<ExecuteRequest>((*next)->payload);
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded->request_id, seen);
      EXPECT_EQ(decoded->sql, sqls[seen]);
      ++seen;
    }
  }
  EXPECT_EQ(seen, sqls.size());
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace youtopia::net
