// Backend-parity differential tests: the same seeded workload driven
// through the in-process Client and through a RemoteClient over a
// loopback YoutopiaServer must produce identical request outcomes, and a
// dump must transfer an engine's state byte-exactly across the wire.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/remote_client.h"
#include "net/server.h"
#include "server/client.h"
#include "server/dump.h"
#include "travel/data_generator.h"
#include "travel/travel_schema.h"
#include "travel/workload.h"

namespace youtopia::net {
namespace {

Status SeedTravelEngine(Youtopia* db) {
  YOUTOPIA_RETURN_IF_ERROR(travel::CreateTravelSchema(db));
  travel::DataGeneratorConfig data;
  data.cities = {"NewYork", "Paris", "Rome"};
  data.flights_per_route_per_day = 4;
  data.days = 3;
  auto generated = travel::GenerateTravelData(db, data);
  return generated.status();
}

travel::WorkloadConfig ParityWorkload() {
  travel::WorkloadConfig config;
  config.seed = 424242;
  config.sessions = 4;
  config.requests_per_session = 12;
  config.group_fraction = 0.25;
  config.hotel_fraction = 0.3;
  config.deadline = std::chrono::milliseconds(20000);
  return config;
}

TEST(RemoteParityTest, WorkloadOutcomesMatchInProcessBackend) {
  // In-process run, through the same ClientInterface-based driver the
  // remote run uses.
  Youtopia local_db;
  ASSERT_TRUE(SeedTravelEngine(&local_db).ok());
  Client local_client(&local_db, ClientOptions("travel", /*record=*/false));
  auto local = travel::RunLoadedWorkload(
      static_cast<ClientInterface*>(&local_client), "Paris",
      ParityWorkload());
  ASSERT_TRUE(local.ok()) << local.status();

  // Loopback-remote run on an identically seeded engine.
  Youtopia remote_db;
  ASSERT_TRUE(SeedTravelEngine(&remote_db).ok());
  YoutopiaServer server(&remote_db);
  ASSERT_TRUE(server.Start().ok());
  auto remote_client = RemoteClient::Connect(
      "127.0.0.1", server.port(), ClientOptions("travel", /*record=*/false));
  ASSERT_TRUE(remote_client.ok()) << remote_client.status();
  auto remote = travel::RunLoadedWorkload(
      static_cast<ClientInterface*>(remote_client->get()), "Paris",
      ParityWorkload());
  ASSERT_TRUE(remote.ok()) << remote.status();

  // Same plan (same seed), so the same number of submissions; every
  // request pairs up eventually under the generous deadline, so both
  // backends satisfy all of them — identical request outcomes, with the
  // remote completions arriving by server push.
  EXPECT_EQ(local->submitted, remote->submitted);
  EXPECT_EQ(local->satisfied, remote->satisfied);
  EXPECT_EQ(local->timed_out, remote->timed_out);
  EXPECT_EQ(local->errors, remote->errors);
  EXPECT_EQ(remote->satisfied, remote->submitted);
  EXPECT_EQ(remote->errors, 0u);

  // Both engines installed one reservation per satisfied request.
  auto local_rows = local_db.Execute("SELECT traveler, fno FROM Reservation");
  auto remote_rows =
      remote_db.Execute("SELECT traveler, fno FROM Reservation");
  ASSERT_TRUE(local_rows.ok());
  ASSERT_TRUE(remote_rows.ok());
  EXPECT_EQ(local_rows->rows.size(), remote_rows->rows.size());
  EXPECT_EQ(local_rows->rows.size(), local->satisfied);
  EXPECT_GE(server.stats().pushes, 1u);
}

TEST(RemoteParityTest, WorkloadOutcomesMatchThroughWorkerPool) {
  // Same parity claim with the engine-side executor pool turned on: the
  // remote statements share the pool, outcomes must not change.
  YoutopiaConfig pooled;
  pooled.executor.num_workers = 2;

  Youtopia local_db(pooled);
  ASSERT_TRUE(SeedTravelEngine(&local_db).ok());
  Client local_client(&local_db, ClientOptions("travel", /*record=*/false));
  auto local = travel::RunLoadedWorkload(
      static_cast<ClientInterface*>(&local_client), "Paris",
      ParityWorkload());
  ASSERT_TRUE(local.ok()) << local.status();

  Youtopia remote_db(pooled);
  ASSERT_TRUE(SeedTravelEngine(&remote_db).ok());
  YoutopiaServer server(&remote_db);
  ASSERT_TRUE(server.Start().ok());
  auto remote_client = RemoteClient::Connect(
      "127.0.0.1", server.port(), ClientOptions("travel", /*record=*/false));
  ASSERT_TRUE(remote_client.ok()) << remote_client.status();
  auto remote = travel::RunLoadedWorkload(
      static_cast<ClientInterface*>(remote_client->get()), "Paris",
      ParityWorkload());
  ASSERT_TRUE(remote.ok()) << remote.status();

  EXPECT_EQ(local->satisfied, remote->satisfied);
  EXPECT_EQ(remote->satisfied, remote->submitted);
  EXPECT_EQ(remote->errors, 0u);
}

TEST(RemoteParityTest, DumpTransfersExactlyAcrossTheWire) {
  // Source engine with the values that used to corrupt: full-mantissa
  // doubles, embedded quotes, NULLs.
  Youtopia source;
  ASSERT_TRUE(SeedTravelEngine(&source).ok());
  ASSERT_TRUE(source
                  .ExecuteScript(
                      "CREATE TABLE Rates (city TEXT, tax DOUBLE, note TEXT);"
                      "INSERT INTO Rates VALUES "
                      "('Paris', 0.1, 'O''Hare transfer'), "
                      "('Rome', 3.141592653589793, NULL), "
                      "('NewYork', 2.2250738585072014e-308, 'subnormal''s "
                      "edge')")
                  .ok());
  auto script = DumpToScript(source);
  ASSERT_TRUE(script.ok()) << script.status();

  // Restore into a fresh engine *through the wire*.
  Youtopia target;
  YoutopiaServer server(&target);
  ASSERT_TRUE(server.Start().ok());
  auto client = RemoteClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE((*client)->ExecuteScript(*script).ok());

  for (const TableInfo& info : source.storage().catalog().ListTables()) {
    auto want = source.Execute("SELECT * FROM " + info.name);
    auto got = (*client)->Execute("SELECT * FROM " + info.name);
    ASSERT_TRUE(want.ok()) << info.name;
    ASSERT_TRUE(got.ok()) << info.name << ": " << got.status();
    EXPECT_EQ(want->rows, got->rows) << info.name;
  }
}

}  // namespace
}  // namespace youtopia::net
