// Client resilience (design decision #12): a RemoteClient with a
// ReconnectPolicy must survive a server restart — in-flight work fails
// with kAborted (a non-idempotent statement must never silently re-run)
// but later calls ride the redialed link — and must transparently retry
// kOverloaded sheds on the synchronous surface up to its budget.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "net/protocol.h"
#include "net/remote_client.h"
#include "net/server.h"
#include "server/client.h"

namespace youtopia::net {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kWait{5000};

std::string PairSql(const std::string& self, const std::string& other) {
  return "SELECT '" + self + "', fno INTO ANSWER r WHERE fno IN "
         "(SELECT fno FROM f WHERE dest='Paris') AND ('" + other +
         "', fno) IN ANSWER r CHOOSE 1";
}

ReconnectPolicy FastReconnect() {
  ReconnectPolicy policy;
  policy.reconnect = true;
  policy.max_reconnect_attempts = 30;
  policy.reconnect_interval = milliseconds(20);
  policy.reconnect_max_interval = milliseconds(100);
  return policy;
}

TEST(RemoteClientReconnectTest, SurvivesServerRestartOnSamePort) {
  YoutopiaConfig config;
  config.executor.num_workers = 2;

  auto db1 = std::make_unique<Youtopia>(config);
  auto server1 = std::make_unique<YoutopiaServer>(db1.get());
  ASSERT_TRUE(server1->Start().ok());
  const uint16_t port = server1->port();

  auto client = RemoteClient::Connect(
      "127.0.0.1", port, ClientOptions("Kramer", /*record=*/false),
      kMaxFrameBytes, FastReconnect());
  ASSERT_TRUE(client.ok()) << client.status();

  ASSERT_TRUE((*client)
                  ->ExecuteScript(
                      "CREATE TABLE f (fno INT, dest TEXT);"
                      "CREATE TABLE r (traveler TEXT, fno INT);"
                      "INSERT INTO f VALUES (100, 'Paris');")
                  .ok());

  // In-flight work at the moment of the drop: a registered entangled
  // coordination, pending until a partner arrives.
  auto pending = (*client)->Submit(PairSql("Kramer", "Jerry"));
  ASSERT_TRUE(pending.ok()) << pending.status();
  ASSERT_FALSE(pending->Done());

  // Kill the server. The drop must fail the pending handle with
  // kAborted — reconnect never resurrects lost server-side state.
  server1->Stop();
  server1.reset();
  db1.reset();
  ASSERT_EQ(pending->Wait(kWait).code(), StatusCode::kAborted);

  // Restart on the same port (fresh engine — the old one is gone, as
  // after a real crash without a WAL).
  Youtopia db2(config);
  ServerConfig restart;
  restart.port = port;
  YoutopiaServer server2(&db2, restart);
  // The old listener may linger briefly; SO_REUSEADDR usually makes
  // this first-try, but don't flake on a slow kernel.
  Status restarted = server2.Start();
  for (int i = 0; i < 50 && !restarted.ok(); ++i) {
    std::this_thread::sleep_for(milliseconds(100));
    restarted = server2.Start();
  }
  ASSERT_TRUE(restarted.ok()) << restarted;

  // The next call waits out the redial and lands on the new server.
  ASSERT_TRUE(
      (*client)->ExecuteScript("CREATE TABLE t2 (x INT)").ok());
  auto rows = (*client)->Execute("SELECT x FROM t2");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_TRUE((*client)->connected());

  // Push dispatch is re-registered on the fresh link: an entangled
  // round trip completes end to end.
  ASSERT_TRUE((*client)
                  ->ExecuteScript(
                      "CREATE TABLE f (fno INT, dest TEXT);"
                      "CREATE TABLE r (traveler TEXT, fno INT);"
                      "INSERT INTO f VALUES (100, 'Paris');")
                  .ok());
  auto kramer = (*client)->Submit(PairSql("Kramer", "Jerry"));
  ASSERT_TRUE(kramer.ok()) << kramer.status();
  auto jerry = (*client)->SubmitAs("Jerry", PairSql("Jerry", "Kramer"));
  ASSERT_TRUE(jerry.ok()) << jerry.status();
  EXPECT_TRUE(kramer->Wait(kWait).ok());
  EXPECT_TRUE(jerry->Wait(kWait).ok());

  (*client)->Close();
}

TEST(RemoteClientReconnectTest, GivesUpAfterAttemptBudget) {
  Youtopia db;
  auto server = std::make_unique<YoutopiaServer>(&db);
  ASSERT_TRUE(server->Start().ok());

  ReconnectPolicy policy = FastReconnect();
  policy.max_reconnect_attempts = 2;
  auto client = RemoteClient::Connect(
      "127.0.0.1", server->port(), ClientOptions("", /*record=*/false),
      kMaxFrameBytes, policy);
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE((*client)->ExecuteScript("CREATE TABLE t (x INT)").ok());

  // Nothing ever comes back on the port: the redial budget runs out and
  // the client settles into plain closed (fail-fast) state.
  server->Stop();
  server.reset();
  auto result = (*client)->Execute("SELECT x FROM t");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_FALSE((*client)->connected());
  (*client)->Close();
}

// ------------------------------------------------------------ overload

/// Minimal scripted peer: accepts one connection and answers every
/// ExecuteRequest with kOverloaded for the first `sheds` requests, then
/// with an empty OK result — the wire behavior of a server whose
/// admission mark the request keeps hitting.
class OverloadedPeer {
 public:
  explicit OverloadedPeer(size_t sheds) : sheds_(sheds) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    serve_ = std::thread([this] { Serve(); });
  }

  ~OverloadedPeer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    serve_.join();
    ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }
  size_t requests_seen() const { return requests_seen_.load(); }

 private:
  void Serve() {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) return;
    FrameAssembler assembler;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (n <= 0) break;
      assembler.Append(buf, static_cast<size_t>(n));
      for (;;) {
        auto frame = assembler.Next();
        if (!frame.ok() || !frame->has_value()) break;
        if ((*frame)->type != MessageType::kExecuteRequest) continue;
        auto request = DecodePayload<ExecuteRequest>((*frame)->payload);
        if (!request.ok()) break;
        const size_t seen = requests_seen_.fetch_add(1);
        ExecuteResponse response;
        response.request_id = request->request_id;
        response.status = seen < sheds_
                              ? Status::Overloaded("scripted shed")
                              : Status::OK();
        const std::string bytes = EncodeFrame(response);
        size_t sent = 0;
        while (sent < bytes.size()) {
          const ssize_t w =
              ::send(conn, bytes.data() + sent, bytes.size() - sent, 0);
          if (w <= 0) { ::close(conn); return; }
          sent += static_cast<size_t>(w);
        }
      }
    }
    ::close(conn);
  }

  const size_t sheds_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<size_t> requests_seen_{0};
  std::thread serve_;
};

TEST(RemoteClientOverloadRetryTest, RetriesShedsWithinBudget) {
  OverloadedPeer peer(/*sheds=*/2);
  ReconnectPolicy policy;
  policy.overload_retry_budget = 3;
  policy.overload_retry_interval = milliseconds(1);
  policy.overload_retry_max_interval = milliseconds(5);
  auto client = RemoteClient::Connect(
      "127.0.0.1", peer.port(), ClientOptions("", /*record=*/false),
      kMaxFrameBytes, policy);
  ASSERT_TRUE(client.ok()) << client.status();

  // Two sheds, then OK: the sync surface absorbs both retries.
  auto result = (*client)->Execute("SELECT 1");
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(peer.requests_seen(), 3u);
  (*client)->Close();
}

TEST(RemoteClientOverloadRetryTest, SurfacesShedPastBudget) {
  OverloadedPeer peer(/*sheds=*/100);
  ReconnectPolicy policy;
  policy.overload_retry_budget = 2;
  policy.overload_retry_interval = milliseconds(1);
  policy.overload_retry_max_interval = milliseconds(5);
  auto client = RemoteClient::Connect(
      "127.0.0.1", peer.port(), ClientOptions("", /*record=*/false),
      kMaxFrameBytes, policy);
  ASSERT_TRUE(client.ok()) << client.status();

  // Initial attempt + 2 retries, all shed: the caller sees kOverloaded.
  auto result = (*client)->Execute("SELECT 1");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(peer.requests_seen(), 3u);
  (*client)->Close();
}

TEST(RemoteClientOverloadRetryTest, AsyncNeverRetries) {
  OverloadedPeer peer(/*sheds=*/100);
  ReconnectPolicy policy;
  policy.overload_retry_budget = 5;
  auto client = RemoteClient::Connect(
      "127.0.0.1", peer.port(), ClientOptions("", /*record=*/false),
      kMaxFrameBytes, policy);
  ASSERT_TRUE(client.ok()) << client.status();

  // The async surface must expose every raw shed (open-loop drivers
  // count them), budget or not.
  auto future = (*client)->ExecuteAsync("SELECT 1");
  const auto result = future.get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(peer.requests_seen(), 1u);
  (*client)->Close();
}

}  // namespace
}  // namespace youtopia::net
