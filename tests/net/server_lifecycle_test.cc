// Regression coverage for server lifecycle races: port() used to read
// port_ without the server mutex while Start() wrote it from another
// thread. The read is now guarded; this test drives concurrent readers
// through Start so TSan (and the lock-rank validator) watch the path.
// The shutdown-under-load suites below extend the audit to the paths
// added with admission control and the metrics endpoint: Stop() racing
// live shedding traffic, completion pushes firing after Stop, and the
// metrics listener's own lifecycle.

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "net/remote_client.h"
#include "server/client.h"

namespace youtopia::net {
namespace {

using std::chrono::milliseconds;

TEST(ServerLifecycleTest, PortIsReadableWhileStarting) {
  Youtopia db;
  YoutopiaServer server(&db);

  std::atomic<bool> stop{false};
  std::atomic<uint16_t> last_seen{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Either 0 (not yet bound) or the final bound port — never a
        // torn value, and never a lock-order violation.
        last_seen.store(server.port(), std::memory_order_relaxed);
      }
    });
  }

  Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started;
  const uint16_t bound = server.port();
  EXPECT_NE(bound, 0);

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  const uint16_t seen = last_seen.load(std::memory_order_relaxed);
  EXPECT_TRUE(seen == 0 || seen == bound) << seen;

  server.Stop();
  // port() stays readable (and stable) after Stop.
  EXPECT_EQ(server.port(), bound);
}

TEST(ServerLifecycleTest, StartStopStartRebindsCleanly) {
  Youtopia db;
  YoutopiaServer server(&db);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t first = server.port();
  EXPECT_NE(first, 0);
  server.Stop();

  YoutopiaServer second(&db);
  ASSERT_TRUE(second.Start().ok());
  EXPECT_NE(second.port(), 0);
  second.Stop();
}

// ---------------------------------------------------------------------
// Shutdown under load. Stats live in a shared_ptr precisely so late
// continuations — a shed booked from a reader mid-drop, a push fired
// after Stop — land on live memory; ASan/TSan turn any regression here
// into a hard failure.

TEST(ServerShutdownAuditTest, StopDuringOverloadedTraffic) {
  // A wedge-prone engine: one worker, admission mark 1, so concurrent
  // remote load sheds constantly — then Stop() lands in the middle.
  YoutopiaConfig config;
  config.executor.num_workers = 1;
  config.executor.admission_high_water = 1;
  Youtopia db(config);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());

  YoutopiaServer server(&db);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> hammers;
  for (int i = 0; i < 3; ++i) {
    hammers.emplace_back([&, i] {
      auto client = RemoteClient::Connect(
          "127.0.0.1", server.port(),
          ClientOptions("h" + std::to_string(i), /*record=*/false));
      if (!client.ok()) return;
      while (!stop.load(std::memory_order_relaxed)) {
        // Sheds, aborts (once Stop severs the link) and successes are
        // all fine — the test is that none of them crash.
        auto result = (*client)->Execute("INSERT INTO t VALUES (1)");
        (void)result;
      }
      (*client)->Close();
    });
  }

  std::this_thread::sleep_for(milliseconds(100));
  server.Stop();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : hammers) t.join();

  // Stats stay readable after Stop, and the overload path was actually
  // exercised while we were tearing down around it.
  const auto stats = server.stats();
  EXPECT_GE(stats.requests, 1u);
}

TEST(ServerShutdownAuditTest, CompletionPushAfterStopDoesNotTouchServer) {
  Youtopia db;
  auto server = std::make_unique<YoutopiaServer>(&db);
  ASSERT_TRUE(server->Start().ok());

  auto client = RemoteClient::Connect("127.0.0.1", server->port(),
                                      ClientOptions("Kramer",
                                                    /*record=*/false));
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE((*client)
                  ->ExecuteScript(
                      "CREATE TABLE f (fno INT, dest TEXT);"
                      "CREATE TABLE r (traveler TEXT, fno INT);"
                      "INSERT INTO f VALUES (100, 'Paris');")
                  .ok());

  // A pending coordination whose CompletionPush continuation holds the
  // connection and the shared stats.
  const std::string pair =
      "SELECT 'Kramer', fno INTO ANSWER r WHERE fno IN "
      "(SELECT fno FROM f WHERE dest='Paris') AND ('Jerry', fno) IN "
      "ANSWER r CHOOSE 1";
  auto pending = (*client)->Submit(pair);
  ASSERT_TRUE(pending.ok()) << pending.status();
  ASSERT_FALSE(pending->Done());

  // The engine outlives the server: destroy the server object entirely,
  // then complete the coordination in-process. The push continuation
  // fires against a dead connection and destroyed server — it must land
  // on the shared stats block, not freed server state.
  server->Stop();
  server.reset();

  Client jerry(&db, ClientOptions("Jerry"));
  auto partner = jerry.Submit(
      "SELECT 'Jerry', fno INTO ANSWER r WHERE fno IN "
      "(SELECT fno FROM f WHERE dest='Paris') AND ('Kramer', fno) IN "
      "ANSWER r CHOOSE 1");
  ASSERT_TRUE(partner.ok()) << partner.status();
  EXPECT_TRUE(partner->Wait(milliseconds(5000)).ok());

  (*client)->Close();
}

// ---------------------------------------------------------------------
// Metrics endpoint lifecycle.

std::string Scrape(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string page;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    page.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return page;
}

TEST(MetricsEndpointTest, ServesEngineAndServerSeries) {
  Youtopia db;
  ServerConfig config;
  config.metrics_port = 0;  // kernel-assigned
  YoutopiaServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.metrics_port(), 0);

  // Put one request through so the per-type counter is nonzero.
  auto client = RemoteClient::Connect("127.0.0.1", server.port(),
                                      ClientOptions("", /*record=*/false));
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE((*client)->ExecuteScript("CREATE TABLE t (x INT)").ok());
  auto rows = (*client)->Execute("SELECT x FROM t");
  ASSERT_TRUE(rows.ok()) << rows.status();

  const std::string page = Scrape(server.metrics_port());
  EXPECT_NE(page.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(page.find("youtopia_executor_workers"), std::string::npos);
  EXPECT_NE(page.find("youtopia_server_requests_total"), std::string::npos);
  EXPECT_NE(page.find(
                "youtopia_server_requests_by_type_total{type=\"Execute"),
            std::string::npos);
  EXPECT_NE(page.find("youtopia_server_statement_latency_us_count"),
            std::string::npos);
  EXPECT_NE(page.find("youtopia_plan_cache_hits_total"), std::string::npos);

  (*client)->Close();
  server.Stop();
  // The renderer is callable after Stop (the exporter thread is joined
  // first, but the method itself only needs the engine).
  EXPECT_NE(server.MetricsText().find("youtopia_executor_workers"),
            std::string::npos);
}

TEST(MetricsEndpointTest, DisabledByDefault) {
  Youtopia db;
  YoutopiaServer server(&db);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.metrics_port(), 0);
  server.Stop();
}

TEST(MetricsEndpointTest, StopWhileScraping) {
  Youtopia db;
  ServerConfig config;
  config.metrics_port = 0;
  YoutopiaServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.metrics_port();
  ASSERT_NE(port, 0);

  // Scrapers race Stop(): each either gets a full page or a reset
  // socket, never a hang or a crash.
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 4; ++i) {
    scrapers.emplace_back([port] {
      for (int j = 0; j < 20; ++j) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
          (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
          char buf[4096];
          while (::recv(fd, buf, sizeof(buf), 0) > 0) {
          }
        }
        ::close(fd);
      }
    });
  }
  std::this_thread::sleep_for(milliseconds(20));
  server.Stop();
  for (auto& t : scrapers) t.join();
}

}  // namespace
}  // namespace youtopia::net
