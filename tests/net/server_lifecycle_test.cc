// Regression coverage for server lifecycle races: port() used to read
// port_ without the server mutex while Start() wrote it from another
// thread. The read is now guarded; this test drives concurrent readers
// through Start so TSan (and the lock-rank validator) watch the path.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "server/client.h"

namespace youtopia::net {
namespace {

TEST(ServerLifecycleTest, PortIsReadableWhileStarting) {
  Youtopia db;
  YoutopiaServer server(&db);

  std::atomic<bool> stop{false};
  std::atomic<uint16_t> last_seen{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Either 0 (not yet bound) or the final bound port — never a
        // torn value, and never a lock-order violation.
        last_seen.store(server.port(), std::memory_order_relaxed);
      }
    });
  }

  Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started;
  const uint16_t bound = server.port();
  EXPECT_NE(bound, 0);

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  const uint16_t seen = last_seen.load(std::memory_order_relaxed);
  EXPECT_TRUE(seen == 0 || seen == bound) << seen;

  server.Stop();
  // port() stays readable (and stable) after Stop.
  EXPECT_EQ(server.port(), bound);
}

TEST(ServerLifecycleTest, StartStopStartRebindsCleanly) {
  Youtopia db;
  YoutopiaServer server(&db);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t first = server.port();
  EXPECT_NE(first, 0);
  server.Stop();

  YoutopiaServer second(&db);
  ASSERT_TRUE(second.Start().ok());
  EXPECT_NE(second.port(), 0);
  second.Stop();
}

}  // namespace
}  // namespace youtopia::net
