#include "net/remote_client.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "net/server.h"
#include "server/client.h"
#include "travel/travel_schema.h"

namespace youtopia::net {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kWait{5000};

/// Server + connected client over loopback, torn down in order.
struct Loopback {
  explicit Loopback(YoutopiaConfig config = {}) : db(config) {
    server = std::make_unique<YoutopiaServer>(&db);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started;
  }

  std::unique_ptr<RemoteClient> Connect(const std::string& owner = "") {
    auto client =
        RemoteClient::Connect("127.0.0.1", server->port(),
                              ClientOptions(owner, /*record=*/false));
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? client.TakeValue() : nullptr;
  }

  Youtopia db;
  std::unique_ptr<YoutopiaServer> server;
};

TEST(RemoteClientTest, ExecuteRoundTripsRowsAndTypes) {
  Loopback loop;
  auto client = loop.Connect();
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client
                  ->ExecuteScript(
                      "CREATE TABLE t (id INT, price DOUBLE, name TEXT, "
                      "ok BOOL, note TEXT);"
                      "INSERT INTO t VALUES (1, 3.141592653589793, "
                      "'O''Hare', TRUE, NULL);")
                  .ok());
  auto result = client->Execute("SELECT * FROM t");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  const Tuple& row = result->rows[0];
  EXPECT_EQ(row.at(0), Value::Int64(1));
  EXPECT_EQ(row.at(1), Value::Double(3.141592653589793));
  EXPECT_EQ(row.at(2), Value::String("O'Hare"));
  EXPECT_EQ(row.at(3), Value::Bool(true));
  EXPECT_TRUE(row.at(4).is_null());
  EXPECT_EQ(result->column_names.size(), 5u);
}

TEST(RemoteClientTest, ErrorsPropagateWithCodes) {
  Loopback loop;
  auto client = loop.Connect();
  ASSERT_NE(client, nullptr);

  auto bad = client->Execute("SELEKT nonsense");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto missing = client->Execute("SELECT * FROM nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Entangled SQL is rejected on the Execute path, as in-process.
  ASSERT_TRUE(client->ExecuteScript("CREATE TABLE r (a TEXT, b INT)").ok());
  auto entangled = client->Execute(
      "SELECT 'x', b INTO ANSWER r WHERE b IN (SELECT b FROM r) CHOOSE 1");
  EXPECT_FALSE(entangled.ok());
}

TEST(RemoteClientTest, AsyncFuturesInterleaveOnOneConnection) {
  Loopback loop;
  auto client = loop.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->ExecuteScript("CREATE TABLE n (v INT)").ok());

  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(client->ExecuteAsync("INSERT INTO n VALUES (" +
                                           std::to_string(i) + ")"));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  auto count = client->Execute("SELECT v FROM n");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows.size(), 16u);
}

TEST(RemoteClientTest, EntangledPairCompletesViaServerPush) {
  Loopback loop;
  ASSERT_TRUE(travel::SetupFigure1(&loop.db).ok());
  auto jerry_client = loop.Connect("Jerry");
  auto kramer_client = loop.Connect("Kramer");
  ASSERT_NE(jerry_client, nullptr);
  ASSERT_NE(kramer_client, nullptr);

  std::atomic<int> callbacks{0};
  auto jerry = jerry_client->Submit(
      "SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
      [&callbacks](const EntangledHandle&) { ++callbacks; });
  ASSERT_TRUE(jerry.ok()) << jerry.status();
  EXPECT_FALSE(jerry->Done());
  EXPECT_EQ(jerry_client->Outstanding().size(), 1u);

  // The partner arrives on a *different connection*: one shared engine
  // behind the server boundary.
  auto kramer = kramer_client->Submit(
      "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Jerry', fno) IN ANSWER Reservation CHOOSE 1");
  ASSERT_TRUE(kramer.ok()) << kramer.status();

  ASSERT_TRUE(jerry->Wait(kWait).ok());
  ASSERT_TRUE(kramer->Wait(kWait).ok());
  // The callback fires on the client's completion-dispatch thread, a
  // hair after Wait observes the terminal state.
  const auto cb_deadline = std::chrono::steady_clock::now() + kWait;
  while (callbacks.load() == 0 &&
         std::chrono::steady_clock::now() < cb_deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(callbacks.load(), 1);
  ASSERT_EQ(jerry->Answers().size(), 1u);
  ASSERT_EQ(kramer->Answers().size(), 1u);
  // Both flew on the same flight.
  EXPECT_EQ(jerry->Answers()[0].at(1), kramer->Answers()[0].at(1));
  EXPECT_TRUE(jerry_client->Outstanding().empty());

  // Jerry's completion is server-pushed; Kramer's own submission closed
  // the group, so his response already carried the terminal state.
  const auto stats = loop.server->stats();
  EXPECT_GE(stats.pushes, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(RemoteClientTest, AlreadyDoneHandleArrivesCompleteInResponse) {
  Loopback loop;
  ASSERT_TRUE(travel::SetupFigure1(&loop.db).ok());
  auto client = loop.Connect("Solo");
  ASSERT_NE(client, nullptr);

  // No partner constraint: satisfied inside the submit round, so the
  // response itself carries the terminal state (no push needed).
  auto solo = client->Submit(
      "SELECT 'Solo', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1");
  ASSERT_TRUE(solo.ok()) << solo.status();
  EXPECT_TRUE(solo->Done());
  EXPECT_TRUE(solo->Outcome().value_or(Status::OK()).ok());
  EXPECT_EQ(solo->Answers().size(), 1u);
  EXPECT_TRUE(client->Outstanding().empty());

  // An immediately-registered callback fires inline, as in-process.
  bool fired = false;
  solo->OnComplete([&fired](const EntangledHandle&) { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(RemoteClientTest, SubmitBatchClosesGroupInOneRound) {
  Loopback loop;
  ASSERT_TRUE(travel::SetupFigure1(&loop.db).ok());
  auto client = loop.Connect();
  ASSERT_NE(client, nullptr);

  auto handles = client->SubmitBatchAs(
      {"Jerry", "Kramer"},
      {"SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
       "(SELECT fno FROM Flights WHERE dest='Paris') AND "
       "('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
       "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN "
       "(SELECT fno FROM Flights WHERE dest='Paris') AND "
       "('Jerry', fno) IN ANSWER Reservation CHOOSE 1"});
  ASSERT_TRUE(handles.ok()) << handles.status();
  ASSERT_EQ(handles->size(), 2u);
  // A complete group submitted together closes in the batch round: both
  // handles come back done.
  for (const EntangledHandle& handle : *handles) {
    ASSERT_TRUE(handle.Wait(kWait).ok());
    EXPECT_EQ(handle.Answers().size(), 1u);
  }
}

TEST(RemoteClientTest, RunAutoDetectsAndPushesCompletion) {
  Loopback loop;
  ASSERT_TRUE(travel::SetupFigure1(&loop.db).ok());
  auto client = loop.Connect("Elaine");
  ASSERT_NE(client, nullptr);

  auto regular = client->Run("SELECT fno FROM Flights WHERE dest='Paris'");
  ASSERT_TRUE(regular.ok()) << regular.status();
  EXPECT_FALSE(regular->entangled);
  EXPECT_FALSE(regular->result.rows.empty());

  auto pending = client->Run(
      "SELECT 'Elaine', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('George', fno) IN ANSWER Reservation CHOOSE 1");
  ASSERT_TRUE(pending.ok()) << pending.status();
  ASSERT_TRUE(pending->entangled);
  ASSERT_TRUE(pending->handle.has_value());
  EXPECT_FALSE(pending->handle->Done());

  auto partner = client->Run(
      "SELECT 'George', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Elaine', fno) IN ANSWER Reservation CHOOSE 1");
  ASSERT_TRUE(partner.ok()) << partner.status();
  ASSERT_TRUE(pending->handle->Wait(kWait).ok());
}

TEST(RemoteClientTest, MixedRemoteAndInProcessClientsCoordinate) {
  Loopback loop;
  ASSERT_TRUE(travel::SetupFigure1(&loop.db).ok());
  auto remote = loop.Connect("Jerry");
  ASSERT_NE(remote, nullptr);
  Client local(&loop.db, ClientOptions("Kramer"));

  auto jerry = remote->Submit(
      "SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Kramer', fno) IN ANSWER Reservation CHOOSE 1");
  ASSERT_TRUE(jerry.ok());
  auto kramer = local.Submit(
      "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Jerry', fno) IN ANSWER Reservation CHOOSE 1");
  ASSERT_TRUE(kramer.ok());
  ASSERT_TRUE(jerry->Wait(kWait).ok());
  ASSERT_TRUE(kramer->Wait(kWait).ok());
}

TEST(RemoteClientTest, OnCompleteMayCallBackIntoTheClient) {
  // In-process, OnComplete callbacks may call straight back into the
  // engine (submit a follow-up, run a query). The remote client keeps
  // that contract by delivering completions from a dispatch thread, not
  // the socket reader — a reader-thread delivery would self-deadlock
  // the nested synchronous call below.
  Loopback loop;
  ASSERT_TRUE(travel::SetupFigure1(&loop.db).ok());
  auto jerry_client = loop.Connect("Jerry");
  auto kramer_client = loop.Connect("Kramer");
  ASSERT_NE(jerry_client, nullptr);
  ASSERT_NE(kramer_client, nullptr);

  RemoteClient* reentrant = jerry_client.get();
  auto follow_up = std::make_shared<std::promise<Status>>();
  auto jerry = jerry_client->Submit(
      "SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
      [reentrant, follow_up](const EntangledHandle&) {
        auto rows = reentrant->Execute(
            "SELECT traveler FROM Reservation WHERE traveler='Jerry'");
        follow_up->set_value(rows.status());
      });
  ASSERT_TRUE(jerry.ok()) << jerry.status();
  ASSERT_TRUE(kramer_client
                  ->Submit("SELECT 'Kramer', fno INTO ANSWER Reservation "
                           "WHERE fno IN (SELECT fno FROM Flights WHERE "
                           "dest='Paris') AND ('Jerry', fno) IN ANSWER "
                           "Reservation CHOOSE 1")
                  .ok());

  auto future = follow_up->get_future();
  ASSERT_EQ(future.wait_for(std::chrono::milliseconds(5000)),
            std::future_status::ready)
      << "nested synchronous call from OnComplete deadlocked";
  EXPECT_TRUE(future.get().ok());
}

TEST(RemoteClientTest, OversizedRequestFailsWithoutKillingConnection) {
  Loopback loop;
  auto client = loop.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->ExecuteScript("CREATE TABLE big (v TEXT)").ok());

  // A script larger than the frame limit is rejected client-side...
  std::string huge = "INSERT INTO big VALUES ('";
  huge.append(kMaxFrameBytes + 16, 'x');
  huge += "')";
  auto rejected = client->ExecuteScript(huge);
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  // ...and the connection is still perfectly usable.
  auto after = client->Execute("SELECT v FROM big");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(client->connected());
}

TEST(RemoteClientTest, CancelAllWithdrawsPendingQueries) {
  Loopback loop;
  ASSERT_TRUE(travel::SetupFigure1(&loop.db).ok());
  auto client = loop.Connect("Newman");
  ASSERT_NE(client, nullptr);

  auto pending = client->Submit(
      "SELECT 'Newman', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Nobody', fno) IN ANSWER Reservation CHOOSE 1");
  ASSERT_TRUE(pending.ok());
  EXPECT_FALSE(pending->Done());

  ASSERT_TRUE(client->CancelAll().ok());
  // The cancellation completes the handle through the push path.
  const Status outcome = pending->Wait(kWait);
  EXPECT_EQ(outcome.code(), StatusCode::kAborted);
  EXPECT_TRUE(client->WaitForAll(kWait).ok());
}

TEST(RemoteClientTest, WorksThroughExecutorWorkerPool) {
  YoutopiaConfig config;
  config.executor.num_workers = 2;
  Loopback loop(config);
  ASSERT_TRUE(travel::SetupFigure1(&loop.db).ok());
  auto a = loop.Connect("Jerry");
  auto b = loop.Connect("Kramer");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  // Statements from both connections flow through the shared pool.
  ASSERT_TRUE(a->ExecuteScript("CREATE TABLE x (v INT);"
                               "INSERT INTO x VALUES (7)").ok());
  auto seen = b->Execute("SELECT v FROM x");
  ASSERT_TRUE(seen.ok()) << seen.status();
  EXPECT_EQ(seen->rows.size(), 1u);

  auto jerry = a->Run(
      "SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Kramer', fno) IN ANSWER Reservation CHOOSE 1");
  ASSERT_TRUE(jerry.ok()) << jerry.status();
  ASSERT_TRUE(jerry->entangled && jerry->handle.has_value());
  auto kramer = b->Run(
      "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Jerry', fno) IN ANSWER Reservation CHOOSE 1");
  ASSERT_TRUE(kramer.ok()) << kramer.status();
  ASSERT_TRUE(jerry->handle->Wait(kWait).ok());
}

TEST(RemoteClientTest, ServerStopAbortsOutstandingWork) {
  Loopback loop;
  ASSERT_TRUE(travel::SetupFigure1(&loop.db).ok());
  auto client = loop.Connect("Jerry");
  ASSERT_NE(client, nullptr);

  auto pending = client->Submit(
      "SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Kramer', fno) IN ANSWER Reservation CHOOSE 1");
  ASSERT_TRUE(pending.ok());

  loop.server->Stop();
  // The pending handle resolves (Aborted) instead of hanging forever.
  const Status outcome = pending->Wait(kWait);
  EXPECT_EQ(outcome.code(), StatusCode::kAborted);
  // New calls fail cleanly.
  auto after = client->Execute("SELECT fno FROM Flights");
  EXPECT_FALSE(after.ok());
  EXPECT_FALSE(client->connected());
}

TEST(RemoteClientTest, ConnectToClosedPortFails) {
  Loopback loop;
  const uint16_t port = loop.server->port();
  loop.server->Stop();
  auto client = RemoteClient::Connect("127.0.0.1", port);
  // Either refused outright, or accepted-then-reset before use; both
  // must surface as a failed Connect or a dead client.
  if (client.ok()) {
    EXPECT_FALSE((*client)->Execute("SELECT 1 FROM t").ok());
  }
}

TEST(RemoteClientTest, ServerStatsCountTraffic) {
  Loopback loop;
  auto client = loop.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->ExecuteScript("CREATE TABLE s (v INT)").ok());
  ASSERT_TRUE(client->Execute("INSERT INTO s VALUES (1)").ok());
  const auto stats = loop.server->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.connections_active, 1u);
  EXPECT_GE(stats.requests, 2u);
  client->Close();
  // Active count drains once the reader notices the hangup.
  const auto deadline = std::chrono::steady_clock::now() + kWait;
  while (loop.server->stats().connections_active > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(loop.server->stats().connections_active, 0u);
}

}  // namespace
}  // namespace youtopia::net
