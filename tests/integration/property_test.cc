// Property-based suites: randomized workloads checked against the
// semantic invariants of entangled-query evaluation (companion paper
// [2] semantics, DESIGN.md §4):
//
//   I1. Every satisfied query's answer tuples are present in the stored
//       answer relation (its heads were installed).
//   I2. Every satisfied query's constraints hold against the stored
//       answer relation (postcondition satisfaction).
//   I3. Every answer value respects its domain predicates (grounding
//       soundness — e.g. coordinated fno really flies to the right dest).
//   I4. Installation is atomic: a pairwise group is satisfied for both
//       members or neither.
//   I5. A fixed seed makes the whole run deterministic.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "server/youtopia.h"

namespace youtopia {
namespace {

using std::chrono::milliseconds;

struct WorkloadParams {
  uint64_t seed;
  int num_pairs;
  int num_dests;
  int flights_per_dest;
  /// Fraction of second-halves withheld (those pairs must stay pending).
  double withhold = 0.0;
};

std::string DestName(int d) { return "City" + std::to_string(d); }

std::string PairSql(const std::string& self, const std::string& other,
                    const std::string& dest) {
  return "SELECT '" + self + "', fno INTO ANSWER Reservation WHERE fno IN "
         "(SELECT fno FROM Flights WHERE dest='" + dest + "') AND ('" +
         other + "', fno) IN ANSWER Reservation CHOOSE 1";
}

/// Runs a randomized pairwise workload and returns the final Reservation
/// contents keyed by traveler.
struct WorkloadOutcome {
  std::map<std::string, int64_t> booked;
  size_t pending = 0;
  size_t satisfied = 0;
};

WorkloadOutcome RunWorkload(const WorkloadParams& params) {
  Random rng(params.seed);
  YoutopiaConfig config;
  config.coordinator.match.rng_seed = params.seed;
  Youtopia db(config);

  EXPECT_TRUE(db.ExecuteScript(
                    "CREATE TABLE Flights (fno INT NOT NULL, dest TEXT NOT "
                    "NULL);"
                    "CREATE TABLE Reservation (traveler TEXT NOT NULL, fno "
                    "INT NOT NULL);"
                    "CREATE INDEX ON Flights (dest);")
                  .ok());
  int64_t fno = 100;
  for (int d = 0; d < params.num_dests; ++d) {
    for (int f = 0; f < params.flights_per_dest; ++f) {
      EXPECT_TRUE(db.Execute("INSERT INTO Flights VALUES (" +
                             std::to_string(fno++) + ", '" + DestName(d) +
                             "')")
                      .ok());
    }
  }

  struct Submission {
    std::string user;
    std::string dest;
    EntangledHandle handle;
  };
  std::vector<Submission> submissions;

  for (int p = 0; p < params.num_pairs; ++p) {
    const std::string a = "A" + std::to_string(p);
    const std::string b = "B" + std::to_string(p);
    const std::string dest =
        DestName(static_cast<int>(rng.NextBelow(params.num_dests)));
    auto ha = db.Submit(PairSql(a, b, dest), a);
    EXPECT_TRUE(ha.ok()) << ha.status();
    submissions.push_back({a, dest, ha.TakeValue()});
    if (rng.NextDouble() >= params.withhold) {
      auto hb = db.Submit(PairSql(b, a, dest), b);
      EXPECT_TRUE(hb.ok()) << hb.status();
      submissions.push_back({b, dest, hb.TakeValue()});
    }
  }

  WorkloadOutcome outcome;
  auto stored = db.Execute("SELECT traveler, fno FROM Reservation");
  EXPECT_TRUE(stored.ok());
  std::map<std::string, int64_t> reservation;
  for (const Tuple& row : stored->rows) {
    reservation[row.at(0).string_value()] = row.at(1).int64_value();
  }
  outcome.booked = reservation;

  // Flight -> dest lookup for I3.
  std::map<int64_t, std::string> flight_dest;
  auto flights = db.Execute("SELECT fno, dest FROM Flights");
  EXPECT_TRUE(flights.ok());
  for (const Tuple& row : flights->rows) {
    flight_dest[row.at(0).int64_value()] = row.at(1).string_value();
  }

  for (const Submission& s : submissions) {
    if (!s.handle.Done()) {
      ++outcome.pending;
      // Pending queries must have contributed nothing (I4 half).
      EXPECT_EQ(reservation.count(s.user), 0u) << s.user;
      continue;
    }
    ++outcome.satisfied;
    const auto answers = s.handle.Answers();
    EXPECT_EQ(answers.size(), 1u);
    if (answers.size() != 1) continue;
    const std::string traveler = answers[0].at(0).string_value();
    const int64_t fno_answer = answers[0].at(1).int64_value();
    EXPECT_EQ(traveler, s.user);
    // I1: answer tuple is stored.
    EXPECT_EQ(reservation.count(traveler), 1u) << traveler;
    EXPECT_EQ(reservation[traveler], fno_answer);
    // I3: domain predicate respected.
    EXPECT_EQ(flight_dest.count(fno_answer), 1u);
    EXPECT_EQ(flight_dest[fno_answer], s.dest) << traveler;
  }

  // I2 + I4: for each pair either both or neither booked, on the same
  // flight.
  for (int p = 0; p < params.num_pairs; ++p) {
    const std::string a = "A" + std::to_string(p);
    const std::string b = "B" + std::to_string(p);
    const bool has_a = reservation.count(a) > 0;
    const bool has_b = reservation.count(b) > 0;
    EXPECT_EQ(has_a, has_b) << "pair " << p;
    if (has_a && has_b) {
      EXPECT_EQ(reservation[a], reservation[b]) << "pair " << p;
    }
  }
  return outcome;
}

class PairwiseWorkloadProperty
    : public ::testing::TestWithParam<WorkloadParams> {};

TEST_P(PairwiseWorkloadProperty, InvariantsHold) {
  const WorkloadOutcome outcome = RunWorkload(GetParam());
  if (GetParam().withhold == 0.0) {
    EXPECT_EQ(outcome.pending, 0u);
    EXPECT_EQ(outcome.booked.size(),
              static_cast<size_t>(GetParam().num_pairs) * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CompleteWorkloads, PairwiseWorkloadProperty,
    ::testing::Values(WorkloadParams{1, 4, 2, 3, 0.0},
                      WorkloadParams{2, 10, 3, 2, 0.0},
                      WorkloadParams{3, 20, 5, 4, 0.0},
                      WorkloadParams{4, 40, 2, 1, 0.0},
                      WorkloadParams{5, 8, 1, 8, 0.0}));

INSTANTIATE_TEST_SUITE_P(
    PartialWorkloads, PairwiseWorkloadProperty,
    ::testing::Values(WorkloadParams{11, 10, 3, 3, 0.5},
                      WorkloadParams{12, 20, 4, 2, 0.3},
                      WorkloadParams{13, 16, 2, 2, 0.8},
                      WorkloadParams{14, 12, 3, 2, 1.0}));

TEST(PairwiseWorkloadDeterminism, SameSeedSameOutcome) {
  WorkloadParams params{99, 12, 3, 3, 0.4};
  auto first = RunWorkload(params);
  auto second = RunWorkload(params);
  EXPECT_EQ(first.booked, second.booked);
  EXPECT_EQ(first.pending, second.pending);
}

/// Group workloads: random group sizes, all-to-all constraints.
class GroupWorkloadProperty : public ::testing::TestWithParam<int> {};

TEST_P(GroupWorkloadProperty, WholeGroupSharesOneFlight) {
  const int group_size = GetParam();
  Youtopia db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE Flights (fno INT NOT NULL, dest TEXT NOT "
                    "NULL);"
                    "CREATE TABLE Reservation (traveler TEXT NOT NULL, fno "
                    "INT NOT NULL);"
                    "INSERT INTO Flights VALUES (1, 'Paris'), (2, 'Paris');")
                  .ok());
  std::vector<std::string> users;
  for (int i = 0; i < group_size; ++i) {
    users.push_back("u" + std::to_string(i));
  }
  std::vector<EntangledHandle> handles;
  for (const auto& self : users) {
    std::string sql = "SELECT '" + self +
                      "', fno INTO ANSWER Reservation WHERE fno IN "
                      "(SELECT fno FROM Flights WHERE dest='Paris')";
    for (const auto& other : users) {
      if (other != self) {
        sql += " AND ('" + other + "', fno) IN ANSWER Reservation";
      }
    }
    sql += " CHOOSE 1";
    auto h = db.Submit(sql, self);
    ASSERT_TRUE(h.ok()) << h.status();
    handles.push_back(h.TakeValue());
    if (&self != &users.back()) {
      EXPECT_FALSE(handles.back().Done());
    }
  }
  Value fno;
  for (size_t i = 0; i < handles.size(); ++i) {
    ASSERT_TRUE(handles[i].Done()) << "user " << i;
    if (i == 0) {
      fno = handles[i].Answers()[0].at(1);
    } else {
      EXPECT_EQ(handles[i].Answers()[0].at(1), fno);
    }
  }
  EXPECT_EQ(db.Execute("SELECT * FROM Reservation")->rows.size(),
            static_cast<size_t>(group_size));
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, GroupWorkloadProperty,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

/// Unification soundness over affine cycles: user u_i demands u_{i+1}
/// one seat to the right, and the last user closes the cycle with a
/// -(n-1) offset back to u_0. All n queries must be answered as one
/// group with consecutive seats — exercising offset propagation through
/// a whole equivalence class.
class OffsetChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(OffsetChainProperty, ClosedSeatLadderIsConsistent) {
  const int n = GetParam();
  Youtopia db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE Seats (seat INT NOT NULL);"
                    "CREATE TABLE SeatRes (u TEXT NOT NULL, seat INT NOT "
                    "NULL);")
                  .ok());
  for (int s = 1; s <= n + 2; ++s) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO Seats VALUES (" + std::to_string(s) + ")")
            .ok());
  }
  std::vector<EntangledHandle> handles;
  for (int i = 0; i < n; ++i) {
    std::string sql = "SELECT 'u" + std::to_string(i) +
                      "', seat INTO ANSWER SeatRes WHERE seat IN "
                      "(SELECT seat FROM Seats)";
    if (i + 1 < n) {
      sql += " AND ('u" + std::to_string(i + 1) +
             "', seat + 1) IN ANSWER SeatRes";
    } else {
      // Close the cycle: u_0 sits n-1 seats left of u_{n-1}.
      sql += " AND ('u0', seat - " + std::to_string(n - 1) +
             ") IN ANSWER SeatRes";
    }
    sql += " CHOOSE 1";
    auto h = db.Submit(sql, "u" + std::to_string(i));
    ASSERT_TRUE(h.ok()) << h.status();
    handles.push_back(h.TakeValue());
    // Nobody completes until the cycle closes.
    if (i + 1 < n) {
      EXPECT_FALSE(handles.back().Done());
    }
  }
  for (auto& h : handles) ASSERT_TRUE(h.Done());
  for (int i = 0; i + 1 < n; ++i) {
    const int64_t mine = handles[i].Answers()[0].at(1).int64_value();
    const int64_t next = handles[i + 1].Answers()[0].at(1).int64_value();
    EXPECT_EQ(next, mine + 1) << "link " << i;
  }
  // Seats stay within the inventory.
  const int64_t first = handles[0].Answers()[0].at(1).int64_value();
  EXPECT_GE(first, 1);
  EXPECT_LE(first + n - 1, n + 2);
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, OffsetChainProperty,
                         ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace youtopia
