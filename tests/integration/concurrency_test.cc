// Threaded coordination: sessions submit entangled queries from many
// threads, as the demo's loaded system does (paper §3: "a large number
// of entangled queries are trying to coordinate simultaneously").

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "server/youtopia.h"
#include "travel/travel_schema.h"

namespace youtopia {
namespace {

using std::chrono::milliseconds;

std::string PairSql(const std::string& self, const std::string& other) {
  return "SELECT '" + self + "', fno INTO ANSWER Reservation WHERE fno IN "
         "(SELECT fno FROM Flights WHERE dest='Paris') AND ('" + other +
         "', fno) IN ANSWER Reservation CHOOSE 1";
}

TEST(ConcurrencyTest, ManyPairsFromManyThreads) {
  Youtopia db;
  ASSERT_TRUE(travel::SetupFigure1(&db).ok());

  constexpr int kPairs = 24;
  std::atomic<int> satisfied{0};
  std::vector<std::thread> threads;
  threads.reserve(kPairs * 2);
  for (int p = 0; p < kPairs; ++p) {
    const std::string a = "A" + std::to_string(p);
    const std::string b = "B" + std::to_string(p);
    threads.emplace_back([&db, a, b, &satisfied] {
      auto handle = db.Submit(PairSql(a, b), a);
      ASSERT_TRUE(handle.ok()) << handle.status();
      if (handle->Wait(milliseconds(10000)).ok()) ++satisfied;
    });
    threads.emplace_back([&db, a, b, &satisfied] {
      auto handle = db.Submit(PairSql(b, a), b);
      ASSERT_TRUE(handle.ok()) << handle.status();
      if (handle->Wait(milliseconds(10000)).ok()) ++satisfied;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(satisfied.load(), kPairs * 2);
  EXPECT_EQ(db.coordinator().pending_count(), 0u);

  // Every pair shares a flight: check via SQL.
  for (int p = 0; p < kPairs; ++p) {
    auto a_row = db.Execute("SELECT fno FROM Reservation WHERE traveler = "
                            "'A" + std::to_string(p) + "'");
    auto b_row = db.Execute("SELECT fno FROM Reservation WHERE traveler = "
                            "'B" + std::to_string(p) + "'");
    ASSERT_TRUE(a_row.ok());
    ASSERT_TRUE(b_row.ok());
    ASSERT_EQ(a_row->rows.size(), 1u);
    ASSERT_EQ(b_row->rows.size(), 1u);
    EXPECT_EQ(a_row->rows[0].at(0), b_row->rows[0].at(0)) << "pair " << p;
  }
}

TEST(ConcurrencyTest, RegularQueriesInterleaveWithCoordination) {
  Youtopia db;
  ASSERT_TRUE(travel::SetupFigure1(&db).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  // Readers hammer the Reservation table while coordination happens.
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&db, &stop, &read_errors] {
      while (!stop.load()) {
        auto rows = db.Execute("SELECT traveler, fno FROM Reservation");
        if (!rows.ok()) {
          ++read_errors;
          continue;
        }
        // Atomic installation: reservations always arrive in pairs.
        EXPECT_EQ(rows->rows.size() % 2, 0u);
      }
    });
  }

  constexpr int kPairs = 10;
  for (int p = 0; p < kPairs; ++p) {
    const std::string a = "A" + std::to_string(p);
    const std::string b = "B" + std::to_string(p);
    auto h1 = db.Submit(PairSql(a, b), a);
    auto h2 = db.Submit(PairSql(b, a), b);
    ASSERT_TRUE(h1.ok());
    ASSERT_TRUE(h2.ok());
    ASSERT_TRUE(h2->Wait(milliseconds(5000)).ok());
  }
  stop = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(read_errors.load(), 0);
  EXPECT_EQ(db.Execute("SELECT * FROM Reservation")->rows.size(),
            static_cast<size_t>(kPairs * 2));
}

TEST(ConcurrencyTest, CancelRacesWithPartnerArrival) {
  // Either the cancel wins (partner stays pending) or the match wins
  // (cancel reports NotFound); never a crash or a half-coordinated state.
  for (int round = 0; round < 20; ++round) {
    Youtopia db;
    ASSERT_TRUE(travel::SetupFigure1(&db).ok());
    auto kramer = db.Submit(PairSql("Kramer", "Jerry"), "Kramer");
    ASSERT_TRUE(kramer.ok());

    std::thread canceller([&db, &kramer] {
      (void)db.coordinator().Cancel(kramer->id());
    });
    auto jerry = db.Submit(PairSql("Jerry", "Kramer"), "Jerry");
    canceller.join();
    ASSERT_TRUE(jerry.ok());

    auto reservations = db.Execute("SELECT * FROM Reservation");
    ASSERT_TRUE(reservations.ok());
    if (jerry->Done() && jerry->Wait(milliseconds(0)).ok()) {
      EXPECT_EQ(reservations->rows.size(), 2u);
    } else {
      EXPECT_TRUE(reservations->rows.empty());
    }
  }
}

}  // namespace
}  // namespace youtopia
