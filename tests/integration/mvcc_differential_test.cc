// The num_versions = 1 degradation guarantee (design decision #10), in
// the style of the sharded-coordinator differential test: a randomized
// mixed workload driven side by side through an MVCC stack and a
// single-version (seed-semantics) stack must produce identical outcomes
// — statement by statement, status code and result set, and identical
// final table contents. A concurrent leg then pins the invariant MVCC
// adds on top: lock-free readers observe every multi-row statement
// atomically.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "server/youtopia.h"

namespace youtopia {
namespace {

std::vector<std::string> SortedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Tuple& t : result.rows) rows.push_back(t.ToString());
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(MvccDifferentialTest, SingleVersionConfigMatchesSeedOutcomes) {
  YoutopiaConfig seed_config;
  seed_config.mvcc.num_versions = 1;  // the seed's 2PL path, byte for byte
  YoutopiaConfig mvcc_config;
  mvcc_config.mvcc.num_versions = 4;
  Youtopia seed(seed_config);
  Youtopia mvcc(mvcc_config);

  const std::string setup =
      "CREATE TABLE items (id INT, qty INT, tag TEXT);"
      "CREATE TABLE audit (id INT, note TEXT);";
  ASSERT_TRUE(seed.ExecuteScript(setup).ok());
  ASSERT_TRUE(mvcc.ExecuteScript(setup).ok());

  Random rng(0xBEEFu);
  auto run_both = [&](const std::string& sql) {
    auto a = seed.Execute(sql);
    auto b = mvcc.Execute(sql);
    ASSERT_EQ(a.ok(), b.ok()) << sql << " -> " << a.status() << " vs "
                              << b.status();
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code()) << sql;
      return;
    }
    EXPECT_EQ(a->affected_rows, b->affected_rows) << sql;
    EXPECT_EQ(a->column_names, b->column_names) << sql;
    EXPECT_EQ(SortedRows(*a), SortedRows(*b)) << sql;
  };

  for (int step = 0; step < 400; ++step) {
    const int64_t id = static_cast<int64_t>(rng.NextBelow(24));
    const int64_t qty = static_cast<int64_t>(rng.NextBelow(100));
    std::string sql;
    switch (rng.NextBelow(8)) {
      case 0:
      case 1:
        sql = "INSERT INTO items VALUES (" + std::to_string(id) + ", " +
              std::to_string(qty) + ", 'tag" + std::to_string(qty % 5) + "')";
        break;
      case 2:
        sql = "UPDATE items SET qty = " + std::to_string(qty) +
              " WHERE id = " + std::to_string(id);
        break;
      case 3:
        // Multi-row update: everything with one tag moves together.
        sql = "UPDATE items SET qty = qty + 1 WHERE tag = 'tag" +
              std::to_string(qty % 5) + "'";
        break;
      case 4:
        sql = "DELETE FROM items WHERE id = " + std::to_string(id);
        break;
      case 5:
        sql = "SELECT id, qty FROM items WHERE id = " + std::to_string(id);
        break;
      case 6:
        sql = "SELECT tag, qty FROM items WHERE qty > " +
              std::to_string(qty);
        break;
      default:
        sql = "SELECT * FROM items";
        break;
    }
    run_both(sql);
    if (step == 120) {
      // Mid-workload DDL: index choices change, outcomes must not.
      run_both("CREATE INDEX ON items (id)");
    }
    if (step % 60 == 30) {
      run_both("INSERT INTO audit VALUES (" + std::to_string(step) +
               ", 'checkpointed')");
      run_both("SELECT * FROM audit");
    }
  }
  // Final state agrees table for table.
  run_both("SELECT * FROM items");
  run_both("SELECT * FROM audit");

  // And the MVCC stack really was exercising version chains, not
  // coincidentally running unversioned.
  EXPECT_TRUE(mvcc.storage().mvcc_enabled());
  EXPECT_FALSE(seed.storage().mvcc_enabled());
  EXPECT_GT(mvcc.storage().mvcc().clock(), kBaseTs);
}

TEST(MvccDifferentialTest, ConcurrentBrowsersSeeStatementsAtomically) {
  // The invariant the browse path adds: a multi-row UPDATE is stamped
  // with one commit timestamp, so a lock-free SELECT sees all of its
  // rows move or none — even while writers churn. The differential
  // anchor: every observed snapshot is a state the serial history could
  // have produced (all rows share one qty value).
  YoutopiaConfig config;
  config.mvcc.num_versions = 6;
  Youtopia db(config);
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE acct (id INT, qty INT);"
                               "INSERT INTO acct VALUES (1, 0);"
                               "INSERT INTO acct VALUES (2, 0);"
                               "INSERT INTO acct VALUES (3, 0);"
                               "INSERT INTO acct VALUES (4, 0);")
                  .ok());

  std::atomic<bool> done{false};
  std::atomic<size_t> torn{0};
  std::atomic<size_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto rows = db.Execute("SELECT qty FROM acct");
        if (!rows.ok()) continue;
        ++reads;
        if (rows->rows.size() != 4) {
          ++torn;
          continue;
        }
        const int64_t first = rows->rows[0].at(0).int64_value();
        for (const Tuple& row : rows->rows) {
          if (row.at(0).int64_value() != first) ++torn;
        }
      }
    });
  }
  // Keep the write churn alive until the readers have actually taken
  // snapshots: on a 1-core host a fixed-count loop can retire before a
  // reader thread is scheduled even once, leaving nothing observed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int i = 0;
  while ((i < 200 || reads.load(std::memory_order_acquire) < 10) &&
         std::chrono::steady_clock::now() < deadline) {
    ++i;
    ASSERT_TRUE(
        db.Execute("UPDATE acct SET qty = " + std::to_string(i)).ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace youtopia
