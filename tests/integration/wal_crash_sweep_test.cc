// The full kill-and-recover differential sweep (acceptance criterion
// for the durability subsystem): ≥100 randomized crash points, each a
// complete run-crash-restart-verify cycle over regular DML, entangled
// pair submissions and mid-run checkpoints. Invariants checked per
// iteration (see tests/wal/crash_harness.h):
//   recovered ⊆ issued, acked ⊆ recovered, every matched pair 0-or-2
//   rows in the answer relation, every acked unresolved submission back
//   in pending.
//
// Labeled `integration`: CI runs it in the slower suite, after the unit
// tests (which include the short 12-seed version) have passed.

#include <gtest/gtest.h>

#include "../wal/crash_harness.h"

namespace youtopia {
namespace {

TEST(WalCrashSweepTest, HundredTwentyRandomizedCrashPoints) {
  constexpr uint64_t kIterations = 120;
  for (uint64_t seed = 1; seed <= kIterations; ++seed) {
    wal_crash::RunCrashIteration("sweep", seed, /*max_ops=*/40);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "sweep stopped at seed " << seed
                    << "; reproduce with RunCrashIteration(\"sweep\", "
                    << seed << ", 40)";
      break;
    }
  }
}

}  // namespace
}  // namespace youtopia
