// Experiments S1-S6 (DESIGN.md): the six demonstration scenarios of
// paper §3.1, driven through the travel middle tier exactly as the demo
// drives them through its web frontend.

#include <gtest/gtest.h>

#include "travel/data_generator.h"
#include "travel/middle_tier.h"
#include "travel/travel_schema.h"

namespace youtopia::travel {
namespace {

class ScenariosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(CreateTravelSchema(&db_).ok());
    DataGeneratorConfig config;
    config.cities = {"NewYork", "Paris", "Rome"};
    config.flights_per_route_per_day = 2;
    config.days = 2;
    config.hotels_per_city = 2;
    ASSERT_TRUE(GenerateTravelData(&db_, config).ok());
    service_ = std::make_unique<TravelService>(
        &db_,
        FriendGraph::Clique(
            {"Jerry", "Kramer", "Elaine", "George", "Newman", "Susan"}),
        &bus_);
  }

  Youtopia db_;
  NotificationBus bus_;
  std::unique_ptr<TravelService> service_;
};

// S1: "Book a flight with a friend".
TEST_F(ScenariosTest, S1_BookFlightWithFriend) {
  auto jerry = service_->BookFlightWithFriend("Jerry", "Kramer", "Paris");
  ASSERT_TRUE(jerry.ok()) << jerry.status();
  EXPECT_FALSE(jerry->Done());

  auto kramer = service_->BookFlightWithFriend("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(kramer.ok());
  ASSERT_TRUE(jerry->Done());
  ASSERT_TRUE(kramer->Done());
  EXPECT_EQ(jerry->Answers()[0].at(1), kramer->Answers()[0].at(1));

  // Notification via the (substituted) Facebook message channel.
  ASSERT_TRUE(service_->WaitAndNotify(*jerry, "Jerry").ok());
  EXPECT_EQ(bus_.MessagesFor("Jerry").size(), 1u);
}

// S1 alternate path: browse, inspect friends' bookings, book directly.
TEST_F(ScenariosTest, S1_BrowseThenBookDirectly) {
  auto flights = service_->BrowseFlights("Paris");
  ASSERT_TRUE(flights.ok());
  ASSERT_FALSE(flights->rows.empty());
  const int64_t fno = flights->rows[0].at(0).int64_value();

  auto kramer = service_->BookFlightDirect("Kramer", fno);
  ASSERT_TRUE(kramer.ok());
  ASSERT_TRUE(kramer->Done());

  auto friends = service_->FriendsOnFlight("Jerry", fno);
  ASSERT_TRUE(friends.ok());
  EXPECT_EQ(*friends, std::vector<std::string>{"Kramer"});

  auto jerry = service_->BookFlightDirect("Jerry", fno);
  ASSERT_TRUE(jerry.ok());
  EXPECT_TRUE(jerry->Done());
  EXPECT_EQ(jerry->Answers()[0].at(1).int64_value(), fno);
}

// S2: "Book a flight and a hotel with a friend".
TEST_F(ScenariosTest, S2_FlightAndHotel) {
  auto jerry =
      service_->BookFlightAndHotelWithFriend("Jerry", "Kramer", "Paris");
  ASSERT_TRUE(jerry.ok()) << jerry.status();
  EXPECT_FALSE(jerry->Done());
  auto kramer =
      service_->BookFlightAndHotelWithFriend("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(kramer.ok());
  ASSERT_TRUE(jerry->Done());
  ASSERT_TRUE(kramer->Done());
  EXPECT_EQ(jerry->Answers()[0].at(1), kramer->Answers()[0].at(1));
  EXPECT_EQ(jerry->Answers()[1].at(1), kramer->Answers()[1].at(1));
  // Hotel is in the destination city.
  auto hotel_city = db_.Execute(
      "SELECT city FROM Hotels WHERE hid = " +
      jerry->Answers()[1].at(1).ToString());
  ASSERT_TRUE(hotel_city.ok());
  ASSERT_FALSE(hotel_city->rows.empty());
  EXPECT_EQ(hotel_city->rows[0].at(0).string_value(), "Paris");
}

// S3: "Multiple simultaneous bookings" — several pairs, interleaved
// submission order.
TEST_F(ScenariosTest, S3_MultipleSimultaneousPairs) {
  struct Pair {
    std::string a, b;
    std::optional<EntangledHandle> ha, hb;
  };
  std::vector<Pair> pairs = {{"Jerry", "Kramer", {}, {}},
                             {"Elaine", "George", {}, {}},
                             {"Newman", "Susan", {}, {}}};
  // First halves arrive...
  for (auto& p : pairs) {
    auto h = service_->BookFlightWithFriend(p.a, p.b, "Paris");
    ASSERT_TRUE(h.ok());
    p.ha = h.TakeValue();
  }
  EXPECT_EQ(db_.coordinator().pending_count(), 3u);
  // ...then the partners, in reverse order.
  for (auto it = pairs.rbegin(); it != pairs.rend(); ++it) {
    auto h = service_->BookFlightWithFriend(it->b, it->a, "Paris");
    ASSERT_TRUE(h.ok());
    it->hb = h.TakeValue();
  }
  for (auto& p : pairs) {
    ASSERT_TRUE(p.ha->Done()) << p.a;
    ASSERT_TRUE(p.hb->Done()) << p.b;
    EXPECT_EQ(p.ha->Answers()[0].at(1), p.hb->Answers()[0].at(1));
  }
  EXPECT_EQ(db_.coordinator().pending_count(), 0u);
  EXPECT_EQ(db_.coordinator().stats().matched_groups, 3u);
}

// S4: "Group flight booking" — four friends on one flight.
TEST_F(ScenariosTest, S4_GroupFlightBooking) {
  const std::vector<std::string> group = {"Jerry", "Kramer", "Elaine",
                                          "George"};
  std::vector<EntangledHandle> handles;
  for (const auto& self : group) {
    TravelRequest request;
    request.user = self;
    for (const auto& other : group) {
      if (other != self) request.flight_companions.push_back(other);
    }
    request.dest = "Paris";
    auto h = service_->SubmitRequest(request);
    ASSERT_TRUE(h.ok()) << h.status();
    handles.push_back(h.TakeValue());
  }
  // All done once the last member submits.
  for (auto& h : handles) ASSERT_TRUE(h.Done());
  const Value fno = handles[0].Answers()[0].at(1);
  for (auto& h : handles) EXPECT_EQ(h.Answers()[0].at(1), fno);
}

// S5: "Group flight and hotel booking".
TEST_F(ScenariosTest, S5_GroupFlightAndHotel) {
  const std::vector<std::string> group = {"Jerry", "Kramer", "Elaine"};
  std::vector<EntangledHandle> handles;
  for (const auto& self : group) {
    TravelRequest request;
    request.user = self;
    for (const auto& other : group) {
      if (other != self) {
        request.flight_companions.push_back(other);
        request.hotel_companions.push_back(other);
      }
    }
    request.dest = "Rome";
    request.want_hotel = true;
    auto h = service_->SubmitRequest(request);
    ASSERT_TRUE(h.ok()) << h.status();
    handles.push_back(h.TakeValue());
  }
  for (auto& h : handles) ASSERT_TRUE(h.Done());
  const Value fno = handles[0].Answers()[0].at(1);
  const Value hid = handles[0].Answers()[1].at(1);
  for (auto& h : handles) {
    EXPECT_EQ(h.Answers()[0].at(1), fno);
    EXPECT_EQ(h.Answers()[1].at(1), hid);
  }
}

// S6: "Ad-hoc examples" — Jerry/Kramer coordinate flights only,
// Kramer/Elaine flights and hotels.
TEST_F(ScenariosTest, S6_AdHocMixedTopology) {
  auto jerry = service_->BookFlightWithFriend("Jerry", "Kramer", "Paris");
  ASSERT_TRUE(jerry.ok());

  TravelRequest kramer_request;
  kramer_request.user = "Kramer";
  kramer_request.flight_companions = {"Jerry", "Elaine"};
  kramer_request.hotel_companions = {"Elaine"};
  kramer_request.dest = "Paris";
  kramer_request.want_hotel = true;
  auto kramer = service_->SubmitRequest(kramer_request);
  ASSERT_TRUE(kramer.ok());
  EXPECT_FALSE(kramer->Done());

  TravelRequest elaine_request;
  elaine_request.user = "Elaine";
  elaine_request.flight_companions = {"Kramer"};
  elaine_request.hotel_companions = {"Kramer"};
  elaine_request.dest = "Paris";
  elaine_request.want_hotel = true;
  auto elaine = service_->SubmitRequest(elaine_request);
  ASSERT_TRUE(elaine.ok());

  ASSERT_TRUE(jerry->Done());
  ASSERT_TRUE(kramer->Done());
  ASSERT_TRUE(elaine->Done());
  EXPECT_EQ(jerry->Answers()[0].at(1), kramer->Answers()[0].at(1));
  EXPECT_EQ(elaine->Answers()[0].at(1), kramer->Answers()[0].at(1));
  EXPECT_EQ(elaine->Answers()[1].at(1), kramer->Answers()[1].at(1));
  // Jerry booked no hotel.
  EXPECT_EQ(jerry->Answers().size(), 1u);
}

// The demo's account view shows pending and confirmed reservations.
TEST_F(ScenariosTest, AccountViewReflectsConfirmedBookings) {
  auto jerry = service_->BookFlightWithFriend("Jerry", "Kramer", "Rome");
  ASSERT_TRUE(jerry.ok());
  auto before = service_->AccountView("Jerry");
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->flights.rows.empty());

  auto kramer = service_->BookFlightWithFriend("Kramer", "Jerry", "Rome");
  ASSERT_TRUE(kramer.ok());
  auto after = service_->AccountView("Jerry");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->flights.rows.size(), 1u);
}

}  // namespace
}  // namespace youtopia::travel
