// Failure injection around atomic installation (design decision #3 in
// DESIGN.md): when any part of installing a matched group fails, the
// whole group rolls back and every member stays pending.

#include <gtest/gtest.h>

#include <atomic>

#include "server/youtopia.h"
#include "travel/middle_tier.h"
#include "travel/travel_schema.h"

namespace youtopia {
namespace {

using std::chrono::milliseconds;

std::string PairSql(const std::string& self, const std::string& other) {
  return "SELECT '" + self + "', fno INTO ANSWER Reservation WHERE fno IN "
         "(SELECT fno FROM Flights WHERE dest='Paris') AND ('" + other +
         "', fno) IN ANSWER Reservation CHOOSE 1";
}

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(travel::SetupFigure1(&db_).ok()); }
  Youtopia db_;
};

TEST_F(FailureInjectionTest, HookFailureRollsBackAllInserts) {
  db_.coordinator().SetInstallHook(
      [](Transaction*, TxnManager*, const MatchResult&) {
        return Status::Aborted("chaos");
      });
  auto h1 = db_.Submit(PairSql("K", "J"), "K");
  auto h2 = db_.Submit(PairSql("J", "K"), "J");
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_FALSE(h1->Done());
  EXPECT_FALSE(h2->Done());
  EXPECT_TRUE(db_.Execute("SELECT * FROM Reservation")->rows.empty());
  EXPECT_EQ(db_.coordinator().pending_count(), 2u);
}

TEST_F(FailureInjectionTest, IntermittentFailureEventuallySucceeds) {
  std::atomic<int> calls{0};
  db_.coordinator().SetInstallHook(
      [&calls](Transaction*, TxnManager*, const MatchResult&) {
        // Fail the first three attempts, then succeed. One attempt
        // happens at submission; each RetriggerAll round attempts once
        // per remaining pending query (two here).
        if (calls.fetch_add(1) < 3) return Status::Aborted("transient");
        return Status::OK();
      });
  auto h1 = db_.Submit(PairSql("K", "J"), "K");
  auto h2 = db_.Submit(PairSql("J", "K"), "J");
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_FALSE(h2->Done());

  // First retrigger: still failing.
  auto round1 = db_.coordinator().RetriggerAll();
  ASSERT_TRUE(round1.ok());
  EXPECT_EQ(round1.value(), 0u);
  // Second retrigger: hook succeeds now.
  auto round2 = db_.coordinator().RetriggerAll();
  ASSERT_TRUE(round2.ok());
  EXPECT_EQ(round2.value(), 2u);
  EXPECT_TRUE(h1->Done());
  EXPECT_TRUE(h2->Done());
  EXPECT_EQ(db_.Execute("SELECT * FROM Reservation")->rows.size(), 2u);
}

TEST_F(FailureInjectionTest, HookMutationsRollBackToo) {
  // The hook writes to a side table, then fails; its writes must
  // disappear with the rest of the transaction.
  ASSERT_TRUE(db_.Execute("CREATE TABLE Audit (note TEXT NOT NULL)").ok());
  db_.coordinator().SetInstallHook(
      [](Transaction* txn, TxnManager* txns, const MatchResult&) -> Status {
        auto rid = txns->Insert(txn, "Audit",
                                Tuple({Value::String("about to fail")}));
        if (!rid.ok()) return rid.status();
        return Status::Aborted("after side effect");
      });
  auto h1 = db_.Submit(PairSql("K", "J"), "K");
  auto h2 = db_.Submit(PairSql("J", "K"), "J");
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_TRUE(db_.Execute("SELECT * FROM Audit")->rows.empty());
  EXPECT_TRUE(db_.Execute("SELECT * FROM Reservation")->rows.empty());
}

TEST_F(FailureInjectionTest, SeatExhaustionLeavesConsistentInventory) {
  // Full travel stack: 2-seat flight, two competing pairs.
  Youtopia db;
  ASSERT_TRUE(travel::CreateTravelSchema(&db).ok());
  ASSERT_TRUE(db.Execute("INSERT INTO Flights VALUES "
                         "(1, 'NewYork', 'Paris', 1, 500, 2)")
                  .ok());
  travel::TravelService service(
      &db, travel::FriendGraph::Clique({"A", "B", "C", "D"}), nullptr);
  ASSERT_TRUE(service.EnableInventoryEnforcement().ok());

  auto a = service.BookFlightWithFriend("A", "B", "Paris");
  auto b = service.BookFlightWithFriend("B", "A", "Paris");
  auto c = service.BookFlightWithFriend("C", "D", "Paris");
  auto d = service.BookFlightWithFriend("D", "C", "Paris");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(d.ok());

  // Exactly one pair fits.
  EXPECT_TRUE(a->Done());
  EXPECT_TRUE(b->Done());
  EXPECT_FALSE(c->Done());
  EXPECT_FALSE(d->Done());
  auto seats = db.Execute("SELECT seats FROM Flights WHERE fno = 1");
  EXPECT_EQ(seats->rows[0].at(0).int64_value(), 0);
  EXPECT_EQ(db.Execute("SELECT * FROM Reservation")->rows.size(), 2u);

  // Capacity restored: the UPDATE itself retriggers the stranded pair
  // (retrigger_on_dml), no manual intervention needed.
  ASSERT_TRUE(db.Execute("UPDATE Flights SET seats = 2 WHERE fno = 1").ok());
  EXPECT_TRUE(c->Done());
  EXPECT_TRUE(d->Done());
  auto nothing_left = db.coordinator().RetriggerAll();
  ASSERT_TRUE(nothing_left.ok());
  EXPECT_EQ(nothing_left.value(), 0u);
}

TEST_F(FailureInjectionTest, SeatRaceBetweenAdjacentSeatPairs) {
  // Two adjacent-seat pairs race for a 2-seat row; the seat-claim hook
  // must never hand the same physical seat to two travelers.
  Youtopia db;
  ASSERT_TRUE(travel::CreateTravelSchema(&db).ok());
  ASSERT_TRUE(db.Execute("INSERT INTO Flights VALUES "
                         "(1, 'NewYork', 'Paris', 1, 500, 4)")
                  .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO Seats VALUES (1, 1), (1, 2)").ok());
  travel::TravelService service(
      &db, travel::FriendGraph::Clique({"A", "B", "C", "D"}), nullptr);
  ASSERT_TRUE(service.EnableInventoryEnforcement().ok());

  auto submit_adjacent = [&service](const std::string& user,
                                    const std::string& companion) {
    travel::TravelRequest request;
    request.user = user;
    request.flight_companions = {companion};
    request.dest = "Paris";
    request.adjacent_seat = true;
    return service.SubmitRequest(request);
  };

  auto a = submit_adjacent("A", "B");
  auto b = submit_adjacent("B", "A");
  auto c = submit_adjacent("C", "D");
  auto d = submit_adjacent("D", "C");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(d.ok());

  EXPECT_TRUE(a->Done());
  EXPECT_TRUE(b->Done());
  // Only two seats existed; the second pair must be left pending.
  EXPECT_FALSE(c->Done());
  EXPECT_FALSE(d->Done());
  EXPECT_TRUE(db.Execute("SELECT * FROM Seats")->rows.empty());
  auto reservations = db.Execute("SELECT * FROM SeatReservation");
  EXPECT_EQ(reservations->rows.size(), 2u);
}

}  // namespace
}  // namespace youtopia
