// Experiment FIG1 (DESIGN.md): exact reproduction of Figure 1 of the
// paper — database, queries, and mutual constraint satisfaction.

#include <gtest/gtest.h>

#include "server/youtopia.h"
#include "travel/travel_schema.h"

namespace youtopia {
namespace {

constexpr const char* kKramerSql =
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation "
    "CHOOSE 1";

constexpr const char* kJerrySql =
    "SELECT 'Jerry', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
    "AND ('Kramer', fno) IN ANSWER Reservation "
    "CHOOSE 1";

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(travel::SetupFigure1(&db_).ok()); }
  Youtopia db_;
};

TEST_F(Figure1Test, DatabaseMatchesFigure1a) {
  auto flights = db_.Execute("SELECT fno, dest FROM Flights");
  ASSERT_TRUE(flights.ok());
  ASSERT_EQ(flights->rows.size(), 4u);
  EXPECT_EQ(flights->rows[0], Tuple({Value::Int64(122),
                                     Value::String("Paris")}));
  EXPECT_EQ(flights->rows[3], Tuple({Value::Int64(136),
                                     Value::String("Rome")}));
  auto airlines = db_.Execute("SELECT fno, airline FROM Airlines");
  ASSERT_EQ(airlines->rows.size(), 4u);
  EXPECT_EQ(airlines->rows[2], Tuple({Value::Int64(134),
                                      Value::String("Lufthansa")}));
}

TEST_F(Figure1Test, LoneQueryWaitsNotRejected) {
  // "A query whose postcondition is not satisfied is not rejected but
  // waits for an opportunity to retry" (paper §1).
  auto kramer = db_.Submit(kKramerSql, "Kramer");
  ASSERT_TRUE(kramer.ok()) << kramer.status();
  EXPECT_FALSE(kramer->Done());
  EXPECT_EQ(db_.coordinator().pending_count(), 1u);
  EXPECT_EQ(db_.Execute("SELECT * FROM Reservation")->rows.size(), 0u);
}

TEST_F(Figure1Test, JointAnswerSatisfiesBothConstraints) {
  auto kramer = db_.Submit(kKramerSql, "Kramer");
  auto jerry = db_.Submit(kJerrySql, "Jerry");
  ASSERT_TRUE(kramer.ok());
  ASSERT_TRUE(jerry.ok());
  ASSERT_TRUE(kramer->Done());
  ASSERT_TRUE(jerry->Done());

  // Figure 1(b): answer tuples R('Kramer', f) and R('Jerry', f) with a
  // shared f that flies to Paris.
  const Tuple kramer_tuple = kramer->Answers()[0];
  const Tuple jerry_tuple = jerry->Answers()[0];
  EXPECT_EQ(kramer_tuple.at(0).string_value(), "Kramer");
  EXPECT_EQ(jerry_tuple.at(0).string_value(), "Jerry");
  const int64_t fno = kramer_tuple.at(1).int64_value();
  EXPECT_EQ(jerry_tuple.at(1).int64_value(), fno);
  EXPECT_TRUE(fno == 122 || fno == 123 || fno == 134) << fno;
  // Never the Rome flight.
  EXPECT_NE(fno, 136);

  // The answer relation contains exactly the two coordinated tuples.
  auto reservation = db_.Execute("SELECT traveler, fno FROM Reservation");
  ASSERT_TRUE(reservation.ok());
  EXPECT_EQ(reservation->rows.size(), 2u);

  // Mutual constraint satisfaction, checked through the query language
  // itself: each one's constraint tuple is in the stored relation.
  auto check_kramer = db_.Execute(
      "SELECT fno FROM Flights WHERE ('Jerry', fno) IN ANSWER Reservation");
  ASSERT_TRUE(check_kramer.ok());
  ASSERT_EQ(check_kramer->rows.size(), 1u);
  EXPECT_EQ(check_kramer->rows[0].at(0).int64_value(), fno);
}

TEST_F(Figure1Test, OrderOfArrivalIrrelevant) {
  // Jerry first, then Kramer — same outcome.
  auto jerry = db_.Submit(kJerrySql, "Jerry");
  ASSERT_TRUE(jerry.ok());
  EXPECT_FALSE(jerry->Done());
  auto kramer = db_.Submit(kKramerSql, "Kramer");
  ASSERT_TRUE(kramer.ok());
  EXPECT_TRUE(jerry->Done());
  EXPECT_TRUE(kramer->Done());
  EXPECT_EQ(jerry->Answers()[0].at(1), kramer->Answers()[0].at(1));
}

TEST_F(Figure1Test, ChoiceIsAmongAllValidFlights) {
  // Across many seeds, coordination picks different Paris flights —
  // the CHOOSE 1 nondeterminism of §2.1.
  std::set<int64_t> chosen;
  for (uint64_t seed = 0; seed < 24; ++seed) {
    YoutopiaConfig config;
    config.coordinator.match.rng_seed = seed;
    Youtopia db(config);
    ASSERT_TRUE(travel::SetupFigure1(&db).ok());
    auto kramer = db.Submit(kKramerSql, "Kramer");
    auto jerry = db.Submit(kJerrySql, "Jerry");
    ASSERT_TRUE(kramer.ok());
    ASSERT_TRUE(jerry.ok());
    ASSERT_TRUE(jerry->Done());
    chosen.insert(jerry->Answers()[0].at(1).int64_value());
  }
  EXPECT_GE(chosen.size(), 2u);
  for (int64_t fno : chosen) {
    EXPECT_TRUE(fno == 122 || fno == 123 || fno == 134);
  }
}

}  // namespace
}  // namespace youtopia
