#include "common/codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"

namespace youtopia {
namespace {

TEST(CodecTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutDouble(3.25);
  w.PutBool(true);
  w.PutBool(false);
  w.PutString("hello");
  w.PutString("");  // empty strings must survive too

  WireReader r(w.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0.0;
  bool b1 = false, b2 = true;
  std::string s1, s2;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetI64(&i64));
  ASSERT_TRUE(r.GetDouble(&d));
  ASSERT_TRUE(r.GetBool(&b1));
  ASSERT_TRUE(r.GetBool(&b2));
  ASSERT_TRUE(r.GetString(&s1));
  ASSERT_TRUE(r.GetString(&s2));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ok());
}

TEST(CodecTest, VarintEdgeValues) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            300,
                            16383,
                            16384,
                            (1ULL << 32) - 1,
                            1ULL << 32,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t value : cases) {
    WireWriter w;
    w.PutVarint(value);
    // One byte per 7 bits: 0 fits in 1, u64 max needs 10.
    EXPECT_LE(w.bytes().size(), 10u);
    WireReader r(w.bytes());
    uint64_t out = 0;
    ASSERT_TRUE(r.GetVarint(&out)) << value;
    EXPECT_EQ(out, value);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(CodecTest, VarintRejectsOverlongEncoding) {
  // Eleven continuation bytes: more than any u64 needs.
  const std::string overlong(11, '\x80');
  WireReader r(overlong);
  uint64_t out = 0;
  EXPECT_FALSE(r.GetVarint(&out));
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, VarintRejectsTenthByteOverflow) {
  // Ten bytes whose tenth carries more than the single bit a u64 has
  // left — accepting it would silently truncate.
  std::string encoded(9, '\x80');
  encoded.push_back('\x02');
  WireReader r(encoded);
  uint64_t out = 0;
  EXPECT_FALSE(r.GetVarint(&out));
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, VarintTruncatedInputFails) {
  WireWriter w;
  w.PutVarint(1ULL << 40);
  const std::string full(w.bytes());
  WireReader r(std::string_view(full).substr(0, full.size() - 1));
  uint64_t out = 0;
  EXPECT_FALSE(r.GetVarint(&out));
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, Crc32KnownVector) {
  // The CRC-32 check value from the standard catalogue ("123456789").
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Sensitivity: one flipped bit changes the sum.
  EXPECT_NE(Crc32("123456789"), Crc32("123456788"));
}

TEST(CodecTest, ReaderFailureIsSticky) {
  WireWriter w;
  w.PutU32(7);
  WireReader r(w.bytes());
  uint64_t u64 = 0;
  EXPECT_FALSE(r.GetU64(&u64));  // only 4 bytes available
  EXPECT_FALSE(r.ok());
  // After a failure everything fails, even reads that would fit.
  uint32_t u32 = 0;
  EXPECT_FALSE(r.GetU32(&u32));
}

TEST(CodecTest, TuplesRoundTripRandomized) {
  Random rng(20260809);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Tuple> tuples;
    const size_t count = rng.NextBelow(6);
    for (size_t i = 0; i < count; ++i) {
      std::vector<Value> values;
      const size_t arity = rng.NextBelow(5);
      for (size_t j = 0; j < arity; ++j) {
        switch (rng.NextBelow(5)) {
          case 0:
            values.push_back(Value::Null());
            break;
          case 1:
            values.push_back(Value::Bool(rng.NextBool()));
            break;
          case 2:
            values.push_back(Value::Int64(static_cast<int64_t>(rng.Next())));
            break;
          case 3:
            values.push_back(Value::Double(rng.NextDouble() * 1e6));
            break;
          default:
            values.push_back(
                Value::String("s" + std::to_string(rng.NextBelow(1000))));
        }
      }
      tuples.push_back(Tuple(std::move(values)));
    }
    WireWriter w;
    w.PutTuples(tuples);
    WireReader r(w.bytes());
    std::vector<Tuple> out;
    ASSERT_TRUE(r.GetTuples(&out));
    ASSERT_TRUE(r.AtEnd());
    ASSERT_EQ(out.size(), tuples.size());
    for (size_t i = 0; i < tuples.size(); ++i) {
      EXPECT_EQ(out[i], tuples[i]);
    }
  }
}

}  // namespace
}  // namespace youtopia
