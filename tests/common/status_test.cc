#include "common/status.h"

#include <gtest/gtest.h>

namespace youtopia {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unsatisfiable("x").code(), StatusCode::kUnsatisfiable);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::TimedOut("x").code(), StatusCode::kTimedOut);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::NotFound("missing table").message(), "missing table");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("no table t").ToString(),
            "NotFound: no table t");
  EXPECT_EQ(Status(StatusCode::kAborted, "").ToString(), "Aborted");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Aborted("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, TakeValueMovesOut) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = r.TakeValue();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {
Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}
Status UseAssignOrReturn(int x, int* out) {
  YOUTOPIA_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}
Status UseReturnIfError(int x) {
  YOUTOPIA_RETURN_IF_ERROR(UseAssignOrReturn(x, &x));
  return Status::OK();
}
}  // namespace helpers

TEST(ResultTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(helpers::UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = helpers::UseAssignOrReturn(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::UseReturnIfError(3).ok());
  EXPECT_FALSE(helpers::UseReturnIfError(-3).ok());
}

}  // namespace
}  // namespace youtopia
