#include "common/string_util.h"

#include <gtest/gtest.h>

namespace youtopia {
namespace {

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("SELECT"), "select");
  EXPECT_EQ(ToLowerAscii("MiXeD123_x"), "mixed123_x");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtilTest, ToUpperAscii) {
  EXPECT_EQ(ToUpperAscii("select"), "SELECT");
  EXPECT_EQ(ToUpperAscii("aB9"), "AB9");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Reservation", "reservation"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x  "), "x");
  EXPECT_EQ(TrimWhitespace("\t\na b\r\n"), "a b");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);  // one empty field
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("SELECT 1", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
}

TEST(StringUtilTest, QuoteSqlStringDoublesQuotes) {
  EXPECT_EQ(QuoteSqlString("Paris"), "'Paris'");
  EXPECT_EQ(QuoteSqlString("O'Hare"), "'O''Hare'");
  EXPECT_EQ(QuoteSqlString(""), "''");
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d rows from %s", 3, "Flights"),
            "3 rows from Flights");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

}  // namespace
}  // namespace youtopia
