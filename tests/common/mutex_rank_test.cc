// Runtime lock-rank validator coverage (design decision #9): in-order
// acquisition passes, out-of-order acquisition aborts with the held-lock
// report, same-rank families require strictly increasing sequence
// numbers, AssertHeld catches missing locks, and the coordinator's
// global-round escalation — the deepest real lock stack in the system —
// runs clean under the validator.

#include "common/mutex.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "entangle/coordinator.h"
#include "entangle/normalizer.h"
#include "sql/parser.h"
#include "storage/storage_engine.h"
#include "txn/txn_manager.h"

namespace youtopia {
namespace {

// Death tests fork; the abort happens in the child, so the parent's
// lock state is untouched. Skip them when the validator is disabled
// (env YOUTOPIA_LOCK_RANK_CHECKS=0 or compiled out).
#define SKIP_IF_VALIDATOR_OFF()                                     \
  do {                                                              \
    if (!lockrank::ChecksEnabled()) {                               \
      GTEST_SKIP() << "lock-rank validator disabled in this build"; \
    }                                                               \
  } while (0)

TEST(MutexRankTest, InOrderAcquisitionPasses) {
  Mutex outer(LockRank::kExecutorService, "outer");
  Mutex middle(LockRank::kWal, "middle");
  Mutex inner(LockRank::kHistogram, "inner");
  MutexLock a(outer);
  MutexLock b(middle);
  MutexLock c(inner);
}

TEST(MutexRankTest, SameRankIncreasingSeqPasses) {
  // The coordinator's shard-mutex family: equal rank, ordered by shard
  // index carried as the sequence number.
  std::vector<std::unique_ptr<Mutex>> shards;
  for (uint32_t i = 0; i < 4; ++i) {
    shards.push_back(std::make_unique<Mutex>(LockRank::kCoordinatorShard,
                                             "shard", i));
  }
  std::vector<MovableMutexLock> locks;
  for (auto& shard : shards) locks.emplace_back(*shard);
}

TEST(MutexRankTest, UnrankedIsExemptInBothDirections) {
  // Distinct, simultaneously-live instances per direction: one pair
  // taken A->B then B->A would be a real inversion (TSan rightly flags
  // it, and scoped re-declarations reuse the stack slots); the point
  // here is only that kUnranked never trips the rank validator.
  Mutex ranked_outer(LockRank::kWal, "ranked_outer");
  Mutex unranked_inner(LockRank::kUnranked, "unranked_inner");
  Mutex unranked_outer(LockRank::kUnranked, "unranked_outer");
  Mutex ranked_inner(LockRank::kWal, "ranked_inner");
  {
    MutexLock a(ranked_outer);
    MutexLock b(unranked_inner);  // Under a ranked lock: fine.
  }
  {
    MutexLock a(unranked_outer);
    MutexLock b(ranked_inner);  // Over a ranked lock: also fine.
  }
}

TEST(MutexRankTest, ReleaseRemovesFromHeldSet) {
  Mutex high(LockRank::kWal, "high");
  Mutex low(LockRank::kExecutorService, "low");
  { MutexLock a(high); }
  // `high` is released, so the lower rank acquires cleanly.
  MutexLock b(low);
}

TEST(MutexRankTest, EarlyUnlockThenRelockStaysConsistent) {
  Mutex mu(LockRank::kWal, "wal_like");
  MutexLock lock(mu);
  lock.Unlock();
  Mutex low(LockRank::kExecutorService, "low");
  { MutexLock b(low); }  // Legal: nothing held during the gap.
  lock.Lock();
  mu.AssertHeld();
}

TEST(MutexRankDeathTest, OutOfOrderAcquisitionAborts) {
  SKIP_IF_VALIDATOR_OFF();
  Mutex inner(LockRank::kHistogram, "histogram");
  Mutex outer(LockRank::kExecutorService, "executor");
  EXPECT_DEATH(
      {
        MutexLock a(inner);
        MutexLock b(outer);
      },
      "LOCK RANK VIOLATION");
}

TEST(MutexRankDeathTest, SameRankNonIncreasingSeqAborts) {
  SKIP_IF_VALIDATOR_OFF();
  Mutex shard0(LockRank::kCoordinatorShard, "shard", 0);
  Mutex shard1(LockRank::kCoordinatorShard, "shard", 1);
  EXPECT_DEATH(
      {
        MutexLock a(shard1);
        MutexLock b(shard0);
      },
      "LOCK RANK VIOLATION");
}

TEST(MutexRankDeathTest, SuccessfulTryLockJoinsHeldSet) {
  SKIP_IF_VALIDATOR_OFF();
  Mutex inner(LockRank::kCatalog, "catalog");
  Mutex outer(LockRank::kWal, "wal");
  EXPECT_DEATH(
      {
        if (inner.TryLock()) {
          MutexLock a(outer);  // kWal < kCatalog while kCatalog held.
        }
      },
      "LOCK RANK VIOLATION");
}

TEST(MutexRankDeathTest, ViolationReportListsHeldLocks) {
  SKIP_IF_VALIDATOR_OFF();
  Mutex held(LockRank::kStorageTables, "storage_tables");
  Mutex attempt(LockRank::kExecutorService, "executor_service");
  // The abort report names both the attempted lock and the held one.
  EXPECT_DEATH(
      {
        MutexLock a(held);
        MutexLock b(attempt);
      },
      "executor_service(.|\n)*storage_tables");
}

TEST(MutexRankDeathTest, AssertHeldAbortsWhenNotHeld) {
  SKIP_IF_VALIDATOR_OFF();
  Mutex mu(LockRank::kLeaf, "unheld");
  EXPECT_DEATH(mu.AssertHeld(), "LOCK ASSERTION FAILED");
}

TEST(MutexRankTest, AssertHeldPassesWhenHeld) {
  Mutex mu(LockRank::kLeaf, "held");
  MutexLock lock(mu);
  mu.AssertHeld();
}

TEST(MutexRankTest, SharedMutexRankChecksApply) {
  SharedMutex tables(LockRank::kStorageTables, "tables");
  Mutex latch(LockRank::kHeapTable, "latch");
  ReaderMutexLock read(tables);
  MutexLock inner(latch);
  tables.AssertHeld();
}

TEST(MutexRankDeathTest, SharedAcquisitionStillRankChecked) {
  SKIP_IF_VALIDATOR_OFF();
  Mutex inner(LockRank::kHeapTable, "heap");
  SharedMutex outer(LockRank::kStorageTables, "tables");
  EXPECT_DEATH(
      {
        MutexLock a(inner);
        ReaderMutexLock b(outer);
      },
      "LOCK RANK VIOLATION");
}

TEST(MutexRankTest, CondVarWaitKeepsMutexInHeldSet) {
  Mutex mu(LockRank::kLeaf, "cv_mutex");
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    // Post-wait the thread owns the mutex again and the validator's
    // held set agrees.
    mu.AssertHeld();
  }
  waker.join();
}

// The deepest real acquisition chain: a cross-shard entangled pair
// forces a global round — every shard mutex in index order, then the
// install path (install txn -> WAL -> 2PL -> storage), then handle
// completion. If the rank table mis-ordered any edge, this aborts.
TEST(MutexRankTest, CoordinatorGlobalRoundEscalationRunsClean) {
  StorageEngine storage;
  ASSERT_TRUE(storage
                  .CreateTable("Flights",
                               Schema({{"fno", DataType::kInt64, false},
                                       {"dest", DataType::kString, false}}))
                  .ok());
  ASSERT_TRUE(storage
                  .Insert("Flights", Tuple({Value::Int64(100),
                                            Value::String("Paris")}))
                  .ok());
  TxnManager txns(&storage);
  CoordinatorConfig config;
  config.num_shards = 4;
  Coordinator coordinator(&storage, &txns, config);

  auto submit = [&](const std::string& head, const std::string& constraint,
                    const std::string& self, const std::string& other) {
    const std::string sql =
        "SELECT '" + self + "', fno INTO ANSWER " + head +
        " WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') AND ('" +
        other + "', fno) IN ANSWER " + constraint + " CHOOSE 1";
    auto stmt = Parser::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto query = Normalizer::Normalize(
        static_cast<const SelectStatement&>(*stmt.value()), 0, self, sql);
    EXPECT_TRUE(query.ok()) << query.status();
    return coordinator.Submit(query.TakeValue());
  };

  // Pick two relations the router places on different shards so the
  // second submission escalates to a global round.
  std::string rel_a, rel_b;
  for (char suffix = 'A'; suffix <= 'Z'; ++suffix) {
    const std::string relation = std::string("Rel") + suffix;
    if (rel_a.empty()) {
      rel_a = relation;
    } else if (coordinator.ShardOfRelation(relation) !=
               coordinator.ShardOfRelation(rel_a)) {
      rel_b = relation;
      break;
    }
  }
  ASSERT_FALSE(rel_b.empty());

  auto first = submit(rel_a, rel_b, "alice", "bob");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first.value().Done());
  auto second = submit(rel_b, rel_a, "bob", "alice");
  ASSERT_TRUE(second.ok()) << second.status();
  // Reaching here without an abort is the real assertion; matching is a
  // bonus sanity check.
  EXPECT_TRUE(first.value().Done());
  EXPECT_TRUE(second.value().Done());
}

}  // namespace
}  // namespace youtopia
