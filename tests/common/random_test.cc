#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace youtopia {
namespace {

TEST(RandomTest, DeterministicUnderSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  bool differed = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) differed = true;
  }
  EXPECT_TRUE(differed);
}

TEST(RandomTest, NextBelowInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RandomTest, NextBelowCoversAllResidues) {
  Random rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RandomTest, NextInRangeInclusive) {
  Random rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, NextDoubleUnitInterval) {
  Random rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextBoolRespectsProbabilityExtremes) {
  Random rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RandomTest, NextBoolRoughlyFair) {
  Random rng(19);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.5)) ++trues;
  }
  EXPECT_GT(trues, 4500);
  EXPECT_LT(trues, 5500);
}

}  // namespace
}  // namespace youtopia
