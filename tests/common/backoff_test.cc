#include "common/backoff.h"

#include <gtest/gtest.h>

#include "server/client.h"

namespace youtopia {
namespace {

using std::chrono::milliseconds;

TEST(BackoffTest, DoublesPerCompletedAttemptUpToCap) {
  EXPECT_EQ(ExponentialBackoff(milliseconds(2), milliseconds(16), 0),
            milliseconds(2));
  EXPECT_EQ(ExponentialBackoff(milliseconds(2), milliseconds(16), 1),
            milliseconds(4));
  EXPECT_EQ(ExponentialBackoff(milliseconds(2), milliseconds(16), 2),
            milliseconds(8));
  EXPECT_EQ(ExponentialBackoff(milliseconds(2), milliseconds(16), 3),
            milliseconds(16));
  EXPECT_EQ(ExponentialBackoff(milliseconds(2), milliseconds(16), 100),
            milliseconds(16));
}

TEST(BackoffTest, FloorsIntervalAtOneMillisecond) {
  EXPECT_EQ(ExponentialBackoff(milliseconds(0), milliseconds(0), 0),
            milliseconds(1));
  EXPECT_EQ(ExponentialBackoff(milliseconds(-5), milliseconds(8), 0),
            milliseconds(1));
  EXPECT_EQ(ExponentialBackoff(milliseconds(0), milliseconds(8), 2),
            milliseconds(4));
}

TEST(BackoffTest, CapNeverClampsBelowInterval) {
  EXPECT_EQ(ExponentialBackoff(milliseconds(500), milliseconds(64), 0),
            milliseconds(500));
  EXPECT_EQ(ExponentialBackoff(milliseconds(500), milliseconds(64), 5),
            milliseconds(500));
}

TEST(BackoffTest, LockRetryPauseIsTheSameSchedule) {
  // The client's blocking retry loop and the executor service's
  // conflict requeues must pace identically: LockRetryPause is a thin
  // wrapper over ExponentialBackoff.
  ClientOptions options;
  options.retry_interval = milliseconds(3);
  options.retry_max_interval = milliseconds(24);
  for (size_t attempts = 0; attempts < 10; ++attempts) {
    EXPECT_EQ(LockRetryPause(options, attempts),
              ExponentialBackoff(options.retry_interval,
                                 options.retry_max_interval, attempts));
  }
}

}  // namespace
}  // namespace youtopia
