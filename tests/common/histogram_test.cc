#include "common/histogram.h"

#include <gtest/gtest.h>

#include <thread>

namespace youtopia {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v : {10, 20, 30, 40}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(HistogramTest, PercentilesAreMonotoneAndBounded) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  uint64_t prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    uint64_t value = h.Percentile(p);
    EXPECT_GE(value, prev) << p;
    EXPECT_GE(value, h.min());
    EXPECT_LE(value, h.max());
    prev = value;
  }
  // Log-bucketed: p50 of uniform 1..1000 is within a factor-2 bucket of
  // 500.
  EXPECT_GE(h.Percentile(50), 256u);
  EXPECT_LE(h.Percentile(50), 1000u);
}

TEST(HistogramTest, PercentileExtremes) {
  Histogram h;
  h.Record(7);
  EXPECT_EQ(h.Percentile(0), 7u);
  EXPECT_EQ(h.Percentile(100), 7u);
  EXPECT_EQ(h.Percentile(50), 7u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  // Merging an empty histogram changes nothing.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
}

TEST(HistogramTest, ToStringHasFields) {
  Histogram h;
  h.Record(100);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p95="), std::string::npos);
}

TEST(HistogramTest, ConcurrentRecording) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= 1000; ++i) {
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 8000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(HistogramTest, ZeroAndHugeValues) {
  Histogram h;
  h.Record(0);
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_LE(h.Percentile(10), h.Percentile(90));
}

}  // namespace
}  // namespace youtopia
