// Direct tests of the physical plan operators, including the ones the
// planner only uses situationally (HashJoin) — executed standalone
// against a populated storage engine.

#include "exec/plan.h"

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "sql/parser.h"

namespace youtopia {
namespace {

class PlanNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(storage_
                    .CreateTable("L", Schema({{"id", DataType::kInt64, false},
                                              {"tag", DataType::kString,
                                               false}}))
                    .ok());
    ASSERT_TRUE(storage_
                    .CreateTable("R", Schema({{"id", DataType::kInt64, false},
                                              {"val", DataType::kInt64,
                                               false}}))
                    .ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(storage_
                      .Insert("L", Tuple({Value::Int64(i),
                                          Value::String("L" +
                                                        std::to_string(i))}))
                      .ok());
    }
    // R has ids 2..5, so the id-join overlap is {2, 3}.
    for (int i = 2; i < 6; ++i) {
      ASSERT_TRUE(storage_
                      .Insert("R", Tuple({Value::Int64(i),
                                          Value::Int64(i * 10)}))
                      .ok());
    }
    ctx_.storage = &storage_;
  }

  StorageEngine storage_;
  ExecContext ctx_;
};

TEST_F(PlanNodeTest, SeqScanReturnsAllRows) {
  SeqScanNode scan("L");
  auto rows = scan.Execute(ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
  EXPECT_EQ(scan.ToString(), "SeqScan(L)");
}

TEST_F(PlanNodeTest, SeqScanMissingTableErrors) {
  SeqScanNode scan("Nope");
  EXPECT_FALSE(scan.Execute(ctx_).ok());
}

TEST_F(PlanNodeTest, IndexScanFetchesMatches) {
  ASSERT_TRUE(storage_.CreateIndex("R", "id").ok());
  IndexScanNode scan("R", "id", Value::Int64(3));
  auto rows = scan.Execute(ctx_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->at(0).at(1).int64_value(), 30);
}

TEST_F(PlanNodeTest, CrossJoinProducesProduct) {
  auto join = std::make_unique<CrossJoinNode>(
      std::make_unique<SeqScanNode>("L"), std::make_unique<SeqScanNode>("R"));
  auto rows = join->Execute(ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 16u);
  EXPECT_EQ(rows->at(0).size(), 4u);  // concatenated tuples
}

TEST_F(PlanNodeTest, HashJoinMatchesEqualKeys) {
  auto join = std::make_unique<HashJoinNode>(
      std::make_unique<SeqScanNode>("L"), std::make_unique<SeqScanNode>("R"),
      /*left_key=*/0, /*right_key=*/0);
  auto rows = join->Execute(ctx_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  for (const Tuple& row : *rows) {
    EXPECT_EQ(row.at(0), row.at(2));  // join keys agree
  }
}

TEST_F(PlanNodeTest, HashJoinHandlesDuplicates) {
  ASSERT_TRUE(storage_
                  .Insert("R", Tuple({Value::Int64(3), Value::Int64(999)}))
                  .ok());
  auto join = std::make_unique<HashJoinNode>(
      std::make_unique<SeqScanNode>("L"), std::make_unique<SeqScanNode>("R"),
      0, 0);
  auto rows = join->Execute(ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // id 2 once, id 3 twice
}

TEST_F(PlanNodeTest, HashJoinEmptySides) {
  ASSERT_TRUE(storage_.CreateTable("Empty",
                                   Schema({{"id", DataType::kInt64, false}}))
                  .ok());
  auto join = std::make_unique<HashJoinNode>(
      std::make_unique<SeqScanNode>("Empty"),
      std::make_unique<SeqScanNode>("R"), 0, 0);
  auto rows = join->Execute(ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(PlanNodeTest, FilterAppliesPredicate) {
  auto stmt = Parser::ParseStatement("SELECT id FROM L WHERE id >= 2");
  ASSERT_TRUE(stmt.ok());
  const auto& select = static_cast<const SelectStatement&>(*stmt.value());
  BoundColumns columns;
  columns.AddSource("L", storage_.catalog().GetTable("L")->schema, 0);
  FilterNode filter(std::make_unique<SeqScanNode>("L"), select.where.get(),
                    &columns);
  auto rows = filter.Execute(ctx_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  EXPECT_NE(filter.ToString().find("id >= 2"), std::string::npos);
}

TEST_F(PlanNodeTest, ProjectEvaluatesExpressions) {
  auto stmt = Parser::ParseStatement("SELECT id * 100 FROM L");
  ASSERT_TRUE(stmt.ok());
  const auto& select = static_cast<const SelectStatement&>(*stmt.value());
  BoundColumns columns;
  columns.AddSource("L", storage_.catalog().GetTable("L")->schema, 0);
  ProjectNode project(std::make_unique<SeqScanNode>("L"),
                      {select.select_list[0].get()}, &columns);
  auto rows = project.Execute(ctx_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ(rows->at(3).at(0).int64_value(), 300);
}

TEST_F(PlanNodeTest, ToStringTreeIndentsChildren) {
  auto join = std::make_unique<CrossJoinNode>(
      std::make_unique<SeqScanNode>("L"), std::make_unique<SeqScanNode>("R"));
  const std::string tree = join->ToStringTree();
  EXPECT_NE(tree.find("CrossJoin\n  SeqScan(L)\n  SeqScan(R)"),
            std::string::npos)
      << tree;
}

}  // namespace
}  // namespace youtopia
