#include "exec/expression_eval.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace youtopia {
namespace {

/// Parses `expr_sql` via a dummy SELECT and evaluates it with no row.
Result<Value> EvalConst(const std::string& expr_sql) {
  auto stmt = Parser::ParseStatement("SELECT " + expr_sql);
  if (!stmt.ok()) return stmt.status();
  const auto& select = static_cast<const SelectStatement&>(*stmt.value());
  return EvaluateConstant(*select.select_list[0]);
}

TEST(ExpressionEvalTest, Literals) {
  EXPECT_EQ(EvalConst("42")->int64_value(), 42);
  EXPECT_EQ(EvalConst("'x'")->string_value(), "x");
  EXPECT_TRUE(EvalConst("TRUE")->bool_value());
  EXPECT_TRUE(EvalConst("NULL")->is_null());
}

TEST(ExpressionEvalTest, IntegerArithmetic) {
  EXPECT_EQ(EvalConst("1 + 2 * 3")->int64_value(), 7);
  EXPECT_EQ(EvalConst("10 - 4")->int64_value(), 6);
  EXPECT_EQ(EvalConst("7 / 2")->int64_value(), 3);  // integer division
  EXPECT_EQ(EvalConst("-5 + 1")->int64_value(), -4);
}

TEST(ExpressionEvalTest, DoubleArithmetic) {
  EXPECT_DOUBLE_EQ(EvalConst("1.5 + 2")->double_value(), 3.5);
  EXPECT_DOUBLE_EQ(EvalConst("7.0 / 2")->double_value(), 3.5);
  EXPECT_DOUBLE_EQ(EvalConst("-1.5")->double_value(), -1.5);
}

TEST(ExpressionEvalTest, DivisionByZeroFails) {
  EXPECT_FALSE(EvalConst("1 / 0").ok());
  EXPECT_FALSE(EvalConst("1.0 / 0.0").ok());
}

TEST(ExpressionEvalTest, StringConcatenationViaPlus) {
  EXPECT_EQ(EvalConst("'a' + 'b'")->string_value(), "ab");
}

TEST(ExpressionEvalTest, Comparisons) {
  EXPECT_TRUE(EvalConst("1 < 2")->bool_value());
  EXPECT_TRUE(EvalConst("2 <= 2")->bool_value());
  EXPECT_FALSE(EvalConst("2 > 2")->bool_value());
  EXPECT_TRUE(EvalConst("2 >= 2")->bool_value());
  EXPECT_TRUE(EvalConst("1 != 2")->bool_value());
  EXPECT_TRUE(EvalConst("'Paris' = 'Paris'")->bool_value());
  EXPECT_TRUE(EvalConst("'Paris' < 'Rome'")->bool_value());
  EXPECT_TRUE(EvalConst("1 < 1.5")->bool_value());  // mixed numeric
}

TEST(ExpressionEvalTest, CrossTypeComparisonFails) {
  EXPECT_FALSE(EvalConst("1 = 'x'").ok());
  EXPECT_FALSE(EvalConst("TRUE < 1").ok());
}

TEST(ExpressionEvalTest, NullPropagatesThroughComparisons) {
  EXPECT_TRUE(EvalConst("NULL = 1")->is_null());
  EXPECT_TRUE(EvalConst("NULL + 1")->is_null());
  EXPECT_TRUE(EvalConst("-(NULL)")->is_null());
}

TEST(ExpressionEvalTest, KleeneLogic) {
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  EXPECT_FALSE(EvalConst("FALSE AND NULL = 1")->bool_value());
  EXPECT_TRUE(EvalConst("TRUE AND NULL = 1")->is_null());
  // TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
  EXPECT_TRUE(EvalConst("TRUE OR NULL = 1")->bool_value());
  EXPECT_TRUE(EvalConst("FALSE OR NULL = 1")->is_null());
  EXPECT_TRUE(EvalConst("NOT FALSE")->bool_value());
  EXPECT_TRUE(EvalConst("NOT NULL")->is_null());
}

TEST(ExpressionEvalTest, BooleanTypeErrors) {
  EXPECT_FALSE(EvalConst("1 AND 2").ok());
  EXPECT_FALSE(EvalConst("NOT 5").ok());
}

TEST(ExpressionEvalTest, ColumnRefInConstantContextFails) {
  EXPECT_FALSE(EvalConst("fno").ok());
}

TEST(ExpressionEvalTest, BoundColumnsResolution) {
  BoundColumns columns;
  Schema flights({{"fno", DataType::kInt64, false},
                  {"dest", DataType::kString, false}});
  Schema airlines({{"fno", DataType::kInt64, false},
                   {"airline", DataType::kString, false}});
  columns.AddSource("f", flights, 0);
  columns.AddSource("a", airlines, 2);

  EXPECT_EQ(columns.Resolve("f", "fno").value(), 0u);
  EXPECT_EQ(columns.Resolve("a", "fno").value(), 2u);
  EXPECT_EQ(columns.Resolve("", "dest").value(), 1u);
  EXPECT_EQ(columns.Resolve("", "airline").value(), 3u);
  // Unqualified fno is ambiguous across sources.
  EXPECT_EQ(columns.Resolve("", "fno").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(columns.Resolve("", "nope").status().code(),
            StatusCode::kNotFound);
  // Case-insensitive.
  EXPECT_EQ(columns.Resolve("F", "DEST").value(), 1u);
}

TEST(ExpressionEvalTest, EvaluatesAgainstRow) {
  BoundColumns columns;
  Schema schema({{"fno", DataType::kInt64, false},
                 {"dest", DataType::kString, false}});
  columns.AddSource("Flights", schema, 0);
  ExpressionEvaluator eval(&columns, nullptr);

  auto stmt = Parser::ParseStatement(
      "SELECT fno + 1000 FROM Flights WHERE dest = 'Paris'");
  ASSERT_TRUE(stmt.ok());
  const auto& select = static_cast<const SelectStatement&>(*stmt.value());
  Tuple row({Value::Int64(122), Value::String("Paris")});

  auto projected = eval.Evaluate(*select.select_list[0], &row);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->int64_value(), 1122);
  auto keep = eval.EvaluatePredicate(*select.where, &row);
  ASSERT_TRUE(keep.ok());
  EXPECT_TRUE(keep.value());

  Tuple rome({Value::Int64(136), Value::String("Rome")});
  EXPECT_FALSE(eval.EvaluatePredicate(*select.where, &rome).value());
}

TEST(ExpressionEvalTest, PredicateRejectsNullAndNonBool) {
  ExpressionEvaluator eval(nullptr, nullptr);
  auto stmt = Parser::ParseStatement("SELECT NULL = 1");
  const auto& select = static_cast<const SelectStatement&>(*stmt.value());
  auto keep = eval.EvaluatePredicate(*select.select_list[0], nullptr);
  ASSERT_TRUE(keep.ok());
  EXPECT_FALSE(keep.value());  // NULL is not TRUE

  auto num = Parser::ParseStatement("SELECT 5");
  const auto& sel2 = static_cast<const SelectStatement&>(*num.value());
  EXPECT_FALSE(eval.EvaluatePredicate(*sel2.select_list[0], nullptr).ok());
}

TEST(CompareValuesTest, SharedHelperAgreesWithSqlSemantics) {
  EXPECT_TRUE(CompareValues(BinaryOp::kEq, Value::Int64(1), Value::Null())
                  ->is_null());
  EXPECT_TRUE(CompareValuesBool(BinaryOp::kLt, Value::Int64(1),
                                Value::Int64(2))
                  .value());
  EXPECT_FALSE(CompareValuesBool(BinaryOp::kEq, Value::Int64(1),
                                 Value::Null())
                   .value());  // NULL folds to false
  EXPECT_FALSE(
      CompareValuesBool(BinaryOp::kEq, Value::Int64(1), Value::String("1"))
          .ok());
}

}  // namespace
}  // namespace youtopia
