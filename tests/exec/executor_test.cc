#include "exec/executor.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace youtopia {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    executor_ = std::make_unique<Executor>(&storage_);
    Run("CREATE TABLE Flights (fno INT NOT NULL, dest TEXT NOT NULL, "
        "price INT NOT NULL)");
    Run("INSERT INTO Flights VALUES (122, 'Paris', 400), "
        "(123, 'Paris', 900), (134, 'Paris', 350), (136, 'Rome', 500)");
  }

  QueryResult Run(const std::string& sql) {
    auto stmt = Parser::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << sql << " -> " << stmt.status();
    auto result = executor_->Execute(*stmt.value());
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? result.TakeValue() : QueryResult{};
  }

  Result<QueryResult> TryRun(const std::string& sql) {
    auto stmt = Parser::ParseStatement(sql);
    if (!stmt.ok()) return stmt.status();
    return executor_->Execute(*stmt.value());
  }

  StorageEngine storage_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, SelectWithFilter) {
  auto result = Run("SELECT fno FROM Flights WHERE dest = 'Paris'");
  EXPECT_EQ(result.rows.size(), 3u);
}

TEST_F(ExecutorTest, SelectProjectionExpressions) {
  auto result = Run("SELECT fno, price / 2 FROM Flights WHERE fno = 122");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].at(1).int64_value(), 200);
  EXPECT_EQ(result.column_names[1], "price / 2");
}

TEST_F(ExecutorTest, SelectStar) {
  auto result = Run("SELECT * FROM Flights");
  EXPECT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.column_names.size(), 3u);
}

TEST_F(ExecutorTest, ConstantSelect) {
  auto result = Run("SELECT 2 + 3, 'hi'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].at(0).int64_value(), 5);
  EXPECT_EQ(result.rows[0].at(1).string_value(), "hi");
}

TEST_F(ExecutorTest, JoinTwoTables) {
  Run("CREATE TABLE Airlines (fno INT NOT NULL, airline TEXT NOT NULL)");
  Run("INSERT INTO Airlines VALUES (122, 'United'), (136, 'Alitalia')");
  auto result = Run(
      "SELECT f.fno, a.airline FROM Flights f, Airlines a "
      "WHERE f.fno = a.fno AND f.dest = 'Paris'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].at(0).int64_value(), 122);
  EXPECT_EQ(result.rows[0].at(1).string_value(), "United");
}

TEST_F(ExecutorTest, InsertReportsAffectedRows) {
  auto result = Run("INSERT INTO Flights VALUES (200, 'Berlin', 100), "
                    "(201, 'Berlin', 120)");
  EXPECT_EQ(result.affected_rows, 2u);
  EXPECT_EQ(Run("SELECT * FROM Flights").rows.size(), 6u);
}

TEST_F(ExecutorTest, InsertTypeMismatchFails) {
  EXPECT_FALSE(TryRun("INSERT INTO Flights VALUES ('x', 'Paris', 1)").ok());
  EXPECT_FALSE(TryRun("INSERT INTO Flights VALUES (1, 'Paris')").ok());
}

TEST_F(ExecutorTest, DeleteWithPredicate) {
  auto result = Run("DELETE FROM Flights WHERE dest = 'Paris'");
  EXPECT_EQ(result.affected_rows, 3u);
  EXPECT_EQ(Run("SELECT * FROM Flights").rows.size(), 1u);
}

TEST_F(ExecutorTest, DeleteAll) {
  EXPECT_EQ(Run("DELETE FROM Flights").affected_rows, 4u);
  EXPECT_TRUE(Run("SELECT * FROM Flights").rows.empty());
}

TEST_F(ExecutorTest, UpdateComputedAssignment) {
  auto result = Run("UPDATE Flights SET price = price + 50 "
                    "WHERE dest = 'Paris'");
  EXPECT_EQ(result.affected_rows, 3u);
  auto check = Run("SELECT price FROM Flights WHERE fno = 122");
  EXPECT_EQ(check.rows[0].at(0).int64_value(), 450);
  // Non-matching rows untouched.
  auto rome = Run("SELECT price FROM Flights WHERE fno = 136");
  EXPECT_EQ(rome.rows[0].at(0).int64_value(), 500);
}

TEST_F(ExecutorTest, UpdateUnknownColumnFails) {
  EXPECT_FALSE(TryRun("UPDATE Flights SET nope = 1").ok());
}

TEST_F(ExecutorTest, CreateIndexAndUseIt) {
  Run("CREATE INDEX ON Flights (dest)");
  auto result = Run("SELECT fno FROM Flights WHERE dest = 'Rome'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].at(0).int64_value(), 136);
}

TEST_F(ExecutorTest, DropTable) {
  Run("DROP TABLE Flights");
  EXPECT_FALSE(TryRun("SELECT * FROM Flights").ok());
}

TEST_F(ExecutorTest, InSubquery) {
  Run("CREATE TABLE Cheap (fno INT NOT NULL)");
  Run("INSERT INTO Cheap VALUES (122), (134)");
  auto result = Run(
      "SELECT fno FROM Flights WHERE fno IN (SELECT fno FROM Cheap)");
  EXPECT_EQ(result.rows.size(), 2u);
  auto negated = Run(
      "SELECT fno FROM Flights WHERE fno NOT IN (SELECT fno FROM Cheap)");
  EXPECT_EQ(negated.rows.size(), 2u);
}

TEST_F(ExecutorTest, SubqueryMustBeSingleColumn) {
  EXPECT_FALSE(
      TryRun("SELECT fno FROM Flights WHERE fno IN (SELECT * FROM Flights)")
          .ok());
}

TEST_F(ExecutorTest, InAnswerAgainstStoredRelation) {
  Run("CREATE TABLE Reservation (traveler TEXT NOT NULL, fno INT NOT NULL)");
  Run("INSERT INTO Reservation VALUES ('Kramer', 122)");
  // Browse-then-book: regular query probing the answer relation.
  auto result = Run(
      "SELECT fno FROM Flights WHERE ('Kramer', fno) IN ANSWER Reservation");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].at(0).int64_value(), 122);
}

TEST_F(ExecutorTest, InAnswerArityMismatchFails) {
  Run("CREATE TABLE Reservation (traveler TEXT NOT NULL, fno INT NOT NULL)");
  EXPECT_FALSE(
      TryRun("SELECT fno FROM Flights WHERE (fno) IN ANSWER Reservation")
          .ok());
}

TEST_F(ExecutorTest, InAnswerMissingRelationFails) {
  EXPECT_FALSE(
      TryRun("SELECT fno FROM Flights WHERE ('K', fno) IN ANSWER Nope").ok());
}

TEST_F(ExecutorTest, QueryResultToStringRendersTable) {
  auto result = Run("SELECT fno FROM Flights WHERE fno = 122");
  const std::string rendered = result.ToString();
  EXPECT_NE(rendered.find("fno"), std::string::npos);
  EXPECT_NE(rendered.find("122"), std::string::npos);
  EXPECT_NE(rendered.find("1 row(s)"), std::string::npos);
}

TEST_F(ExecutorTest, DmlResultToString) {
  auto result = Run("DELETE FROM Flights WHERE fno = 122");
  EXPECT_NE(result.ToString().find("1 row(s) affected"), std::string::npos);
}

}  // namespace
}  // namespace youtopia
