#include "exec/planner.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace youtopia {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(storage_
                    .CreateTable("Flights",
                                 Schema({{"fno", DataType::kInt64, false},
                                         {"dest", DataType::kString, false},
                                         {"price", DataType::kInt64, false}}))
                    .ok());
    ASSERT_TRUE(storage_
                    .CreateTable("Airlines",
                                 Schema({{"fno", DataType::kInt64, false},
                                         {"airline", DataType::kString, false}}))
                    .ok());
    ASSERT_TRUE(storage_.CreateIndex("Flights", "dest").ok());
    planner_ = std::make_unique<Planner>(&storage_);
  }

  std::unique_ptr<SelectStatement> ParseSelect(const std::string& sql) {
    auto stmt = Parser::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    return std::unique_ptr<SelectStatement>(
        static_cast<SelectStatement*>(stmt.TakeValue().release()));
  }

  StorageEngine storage_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(PlannerTest, SingleTableSeqScan) {
  auto stmt = ParseSelect("SELECT fno FROM Flights");
  auto planned = planner_->PlanSelect(*stmt);
  ASSERT_TRUE(planned.ok());
  // Project over SeqScan.
  EXPECT_NE(planned->root->ToString().find("Project"), std::string::npos);
  ASSERT_EQ(planned->root->children().size(), 1u);
  EXPECT_EQ(planned->root->children()[0]->ToString(), "SeqScan(Flights)");
  EXPECT_EQ(planned->column_names, std::vector<std::string>{"fno"});
}

TEST_F(PlannerTest, IndexScanChosenForIndexedEquality) {
  auto stmt = ParseSelect("SELECT fno FROM Flights WHERE dest = 'Paris'");
  auto planned = planner_->PlanSelect(*stmt);
  ASSERT_TRUE(planned.ok());
  const std::string tree = planned->root->ToStringTree();
  EXPECT_NE(tree.find("IndexScan(Flights.dest = 'Paris')"),
            std::string::npos)
      << tree;
  // Sole conjunct absorbed: no Filter node.
  EXPECT_EQ(tree.find("Filter"), std::string::npos) << tree;
}

TEST_F(PlannerTest, IndexScanWithResidualFilter) {
  auto stmt = ParseSelect(
      "SELECT fno FROM Flights WHERE dest = 'Paris' AND price < 500");
  auto planned = planner_->PlanSelect(*stmt);
  ASSERT_TRUE(planned.ok());
  const std::string tree = planned->root->ToStringTree();
  EXPECT_NE(tree.find("IndexScan"), std::string::npos) << tree;
  EXPECT_NE(tree.find("Filter"), std::string::npos) << tree;
}

TEST_F(PlannerTest, NonIndexedPredicateUsesSeqScanAndFilter) {
  auto stmt = ParseSelect("SELECT fno FROM Flights WHERE price < 500");
  auto planned = planner_->PlanSelect(*stmt);
  ASSERT_TRUE(planned.ok());
  const std::string tree = planned->root->ToStringTree();
  EXPECT_NE(tree.find("SeqScan"), std::string::npos);
  EXPECT_NE(tree.find("Filter"), std::string::npos);
  EXPECT_EQ(tree.find("IndexScan"), std::string::npos);
}

TEST_F(PlannerTest, EquiJoinPlansHashJoin) {
  auto stmt = ParseSelect(
      "SELECT f.fno, a.airline FROM Flights f, Airlines a "
      "WHERE f.fno = a.fno");
  auto planned = planner_->PlanSelect(*stmt);
  ASSERT_TRUE(planned.ok());
  const std::string tree = planned->root->ToStringTree();
  EXPECT_NE(tree.find("HashJoin"), std::string::npos) << tree;
  EXPECT_EQ(planned->column_names,
            (std::vector<std::string>{"fno", "airline"}));
}

TEST_F(PlannerTest, NonEquiJoinFallsBackToCrossJoin) {
  auto stmt = ParseSelect(
      "SELECT f.fno FROM Flights f, Airlines a WHERE f.fno < a.fno");
  auto planned = planner_->PlanSelect(*stmt);
  ASSERT_TRUE(planned.ok());
  const std::string tree = planned->root->ToStringTree();
  EXPECT_NE(tree.find("CrossJoin"), std::string::npos) << tree;
  EXPECT_EQ(tree.find("HashJoin"), std::string::npos) << tree;
}

TEST_F(PlannerTest, ThreeWayJoinChainsHashJoins) {
  ASSERT_TRUE(storage_
                  .CreateTable("Seats", Schema({{"fno", DataType::kInt64,
                                                 false},
                                                {"seat", DataType::kInt64,
                                                 false}}))
                  .ok());
  auto stmt = ParseSelect(
      "SELECT f.fno FROM Flights f, Airlines a, Seats s "
      "WHERE f.fno = a.fno AND s.fno = a.fno");
  auto planned = planner_->PlanSelect(*stmt);
  ASSERT_TRUE(planned.ok());
  const std::string tree = planned->root->ToStringTree();
  // Both joins hashed, none crossed.
  EXPECT_EQ(tree.find("CrossJoin"), std::string::npos) << tree;
  size_t first = tree.find("HashJoin");
  ASSERT_NE(first, std::string::npos) << tree;
  EXPECT_NE(tree.find("HashJoin", first + 1), std::string::npos) << tree;
}

TEST_F(PlannerTest, StarExpandsAllColumns) {
  auto stmt = ParseSelect("SELECT * FROM Flights");
  auto planned = planner_->PlanSelect(*stmt);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->column_names,
            (std::vector<std::string>{"fno", "dest", "price"}));
}

TEST_F(PlannerTest, StarMixedWithExprsRejected) {
  auto stmt = ParseSelect("SELECT *, fno FROM Flights");
  EXPECT_FALSE(planner_->PlanSelect(*stmt).ok());
}

TEST_F(PlannerTest, ConstantSelectHasNullRoot) {
  auto stmt = ParseSelect("SELECT 1 + 1");
  auto planned = planner_->PlanSelect(*stmt);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->root, nullptr);
}

TEST_F(PlannerTest, UnknownTableFails) {
  auto stmt = ParseSelect("SELECT x FROM Nope");
  EXPECT_EQ(planner_->PlanSelect(*stmt).status().code(),
            StatusCode::kNotFound);
}

TEST_F(PlannerTest, EntangledQueryRejected) {
  auto stmt = ParseSelect("SELECT 'u', fno INTO ANSWER R WHERE fno IN "
                          "(SELECT fno FROM Flights)");
  EXPECT_EQ(planner_->PlanSelect(*stmt).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SplitConjunctsTest, SplitsNestedAnds) {
  auto stmt = Parser::ParseStatement(
      "SELECT * FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)");
  ASSERT_TRUE(stmt.ok());
  const auto& select = static_cast<const SelectStatement&>(*stmt.value());
  auto conjuncts = SplitConjuncts(select.where.get());
  EXPECT_EQ(conjuncts.size(), 3u);
  EXPECT_TRUE(SplitConjuncts(nullptr).empty());
}

}  // namespace
}  // namespace youtopia
