#include "service/executor_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "server/admin.h"
#include "server/client.h"

namespace youtopia {
namespace {

using std::chrono::milliseconds;

YoutopiaConfig PoolConfig(size_t workers, size_t capacity = 1024) {
  YoutopiaConfig config;
  config.executor.num_workers = workers;
  config.executor.queue_capacity = capacity;
  return config;
}

std::string PairSql(const std::string& self, const std::string& other) {
  return "SELECT '" + self + "', fno INTO ANSWER Reservation WHERE fno IN "
         "(SELECT fno FROM Flights WHERE dest='Paris') AND ('" + other +
         "', fno) IN ANSWER Reservation CHOOSE 1";
}

void SetupFlights(Youtopia* db) {
  ASSERT_TRUE(db->ExecuteScript(
                    "CREATE TABLE Flights (fno INT NOT NULL, dest TEXT NOT "
                    "NULL);"
                    "CREATE TABLE Reservation (traveler TEXT NOT NULL, fno "
                    "INT NOT NULL);"
                    "INSERT INTO Flights VALUES (100, 'Paris'), (101, "
                    "'Paris');")
                  .ok());
}

// ---------------------------------------------------------------------
// Inline mode (num_workers = 0): seed synchronous semantics.

TEST(ExecutorServiceInlineTest, SubmitExecutesInCallingThread) {
  Youtopia db;  // default: inline
  ASSERT_EQ(db.executor_service().num_workers(), 0u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  bool fired = false;
  StatementTask task;
  task.sql = "CREATE TABLE t (x INT)";
  task.kind = StatementTask::Kind::kExecute;
  task.on_done = [&](Result<RunOutcome> outcome) {
    fired = true;
    ran_on = std::this_thread::get_id();
    EXPECT_TRUE(outcome.ok());
  };
  ASSERT_TRUE(db.executor_service().Submit(std::move(task)).ok());
  // Inline: the continuation already fired, in this very thread.
  EXPECT_TRUE(fired);
  EXPECT_EQ(ran_on, caller);
  EXPECT_TRUE(db.storage().catalog().HasTable("t"));
}

TEST(ExecutorServiceInlineTest, RunDetectsEntangledAndRegular) {
  Youtopia db;
  SetupFlights(&db);
  auto future = db.executor_service().SubmitWithFuture([] {
    StatementTask task;
    task.sql = "SELECT fno FROM Flights WHERE dest='Paris'";
    return task;
  }());
  auto outcome = future.get();
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->entangled);
  EXPECT_EQ(outcome->result.rows.size(), 2u);

  StatementTask entangled;
  entangled.sql = PairSql("A", "B");
  entangled.owner = "A";
  auto efuture = db.executor_service().SubmitWithFuture(std::move(entangled));
  auto eoutcome = efuture.get();
  ASSERT_TRUE(eoutcome.ok());
  EXPECT_TRUE(eoutcome->entangled);
  ASSERT_TRUE(eoutcome->handle.has_value());
  EXPECT_FALSE(eoutcome->handle->Done());
  EXPECT_EQ(db.coordinator().pending_count(), 1u);
}

TEST(ExecutorServiceInlineTest, ExecuteKindRejectsEntangled) {
  Youtopia db;
  SetupFlights(&db);
  StatementTask task;
  task.sql = PairSql("A", "B");
  task.kind = StatementTask::Kind::kExecute;
  auto outcome = db.executor_service().SubmitWithFuture(std::move(task)).get();
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.coordinator().pending_count(), 0u);
}

// ---------------------------------------------------------------------
// Pool mode basics.

TEST(ExecutorServicePoolTest, ExecutesOnWorkerThread) {
  Youtopia db(PoolConfig(2));
  const auto caller = std::this_thread::get_id();
  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  std::thread::id ran_on;
  StatementTask task;
  task.sql = "CREATE TABLE t (x INT)";
  task.kind = StatementTask::Kind::kExecute;
  task.on_done = [&](Result<RunOutcome> outcome) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(outcome.ok());
    ran_on = std::this_thread::get_id();
    fired = true;
    cv.notify_all();
  };
  ASSERT_TRUE(db.executor_service().Submit(std::move(task)).ok());
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, milliseconds(5000), [&] { return fired; }));
  EXPECT_NE(ran_on, caller);
}

TEST(ExecutorServicePoolTest, DrainWaitsForAllTasks) {
  Youtopia db(PoolConfig(2));
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  for (int i = 0; i < 50; ++i) {
    StatementTask task;
    task.sql = "INSERT INTO t VALUES (" + std::to_string(i) + ")";
    task.session = static_cast<uint64_t>(i % 5);
    ASSERT_TRUE(db.executor_service().Submit(std::move(task)).ok());
  }
  ASSERT_TRUE(db.executor_service().Drain(milliseconds(10000)).ok());
  auto rows = db.Execute("SELECT x FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 50u);
  const auto stats = db.executor_service().stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GE(stats.executed, 50u);
}

TEST(ExecutorServicePoolTest, SubmitAfterShutdownIsRejected) {
  Youtopia db(PoolConfig(1));
  db.executor_service().Shutdown();
  StatementTask task;
  task.sql = "CREATE TABLE t (x INT)";
  EXPECT_EQ(db.executor_service().Submit(std::move(task)).code(),
            StatusCode::kAborted);
}

TEST(ExecutorServicePoolTest, TrySubmitRejectsWhenFull) {
  // Capacity 2 and a pool whose single worker is wedged behind a held
  // X lock: the first task conflicts and requeues (still occupying its
  // capacity slot), the second fills the queue, the third must bounce.
  YoutopiaConfig config = PoolConfig(1, /*capacity=*/2);
  config.executor.default_statement_timeout = milliseconds(2000);
  Youtopia db(config);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());

  auto blocker = db.txn_manager().Begin();
  ASSERT_TRUE(db.txn_manager()
                  .lock_manager()
                  .TryAcquire(blocker->id(), "t", LockMode::kExclusive)
                  .ok());

  std::atomic<int> completions{0};
  auto make_task = [&](uint64_t session) {
    StatementTask task;
    task.sql = "INSERT INTO t VALUES (1)";
    task.session = session;
    task.on_done = [&](Result<RunOutcome>) { ++completions; };
    return task;
  };
  ASSERT_TRUE(db.executor_service().TrySubmit(make_task(1)).ok());
  ASSERT_TRUE(db.executor_service().TrySubmit(make_task(2)).ok());
  // Both slots taken (one task conflict-requeuing, one waiting).
  Status full = db.executor_service().TrySubmit(make_task(3));
  EXPECT_EQ(full.code(), StatusCode::kTimedOut);
  EXPECT_GE(db.executor_service().stats().rejected, 1u);

  ASSERT_TRUE(db.txn_manager().Commit(blocker.get()).ok());
  ASSERT_TRUE(db.executor_service().Drain(milliseconds(10000)).ok());
  EXPECT_EQ(completions.load(), 2);
}

// ---------------------------------------------------------------------
// Lock-conflict requeue.

TEST(ExecutorServicePoolTest, ConflictRequeuesAndSucceedsAfterRelease) {
  Youtopia db(PoolConfig(2));
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());

  auto blocker = db.txn_manager().Begin();
  ASSERT_TRUE(db.txn_manager()
                  .lock_manager()
                  .TryAcquire(blocker->id(), "t", LockMode::kExclusive)
                  .ok());

  StatementTask task;
  task.sql = "INSERT INTO t VALUES (42)";
  task.statement_timeout = milliseconds(5000);
  auto future = db.executor_service().SubmitWithFuture(std::move(task));
  // Give the worker time to conflict and requeue at least once.
  while (db.executor_service().stats().lock_requeues == 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_TRUE(db.txn_manager().Commit(blocker.get()).ok());
  auto outcome = future.get();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(db.executor_service().stats().lock_requeues, 1u);
  auto rows = db.Execute("SELECT x FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 1u);
}

TEST(ExecutorServicePoolTest, ConflictBudgetExhaustionSurfacesTimeout) {
  YoutopiaConfig config = PoolConfig(1);
  config.executor.default_statement_timeout = milliseconds(30);
  Youtopia db(config);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());

  auto blocker = db.txn_manager().Begin();
  ASSERT_TRUE(db.txn_manager()
                  .lock_manager()
                  .TryAcquire(blocker->id(), "t", LockMode::kExclusive)
                  .ok());

  StatementTask task;
  task.sql = "INSERT INTO t VALUES (1)";
  auto outcome = db.executor_service().SubmitWithFuture(std::move(task)).get();
  EXPECT_EQ(outcome.status().code(), StatusCode::kTimedOut);
  ASSERT_TRUE(db.txn_manager().Commit(blocker.get()).ok());
  // Nothing executed: the conflicted statement had no side effects.
  auto rows = db.Execute("SELECT x FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 0u);
}

TEST(ExecutorServicePoolTest, RequeueUsesExponentialBackoffSchedule) {
  // The requeue pacing is the shared ExponentialBackoff schedule —
  // pinned here semantically: with a conflict budget of B and initial
  // interval I, the number of attempts is bounded by the schedule's
  // partial sums, not by busy-spinning (which would rack up thousands).
  YoutopiaConfig config = PoolConfig(1);
  config.executor.default_statement_timeout = milliseconds(120);
  Youtopia db(config);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());

  auto blocker = db.txn_manager().Begin();
  ASSERT_TRUE(db.txn_manager()
                  .lock_manager()
                  .TryAcquire(blocker->id(), "t", LockMode::kExclusive)
                  .ok());

  StatementTask task;
  task.sql = "INSERT INTO t VALUES (1)";
  task.retry_interval = milliseconds(4);
  task.retry_max_interval = milliseconds(32);
  auto outcome = db.executor_service().SubmitWithFuture(std::move(task)).get();
  EXPECT_EQ(outcome.status().code(), StatusCode::kTimedOut);
  ASSERT_TRUE(db.txn_manager().Commit(blocker.get()).ok());

  // Schedule 4, 8, 16, 32, 32... sums past 120ms within ~6 attempts.
  // Allow slack for scheduling, but busy-wait behavior (hundreds of
  // requeues) must be impossible.
  const auto stats = db.executor_service().stats();
  EXPECT_GE(stats.lock_requeues, 2u);
  EXPECT_LE(stats.lock_requeues, 12u);
}

// ---------------------------------------------------------------------
// Per-session FIFO under a multi-worker pool.

TEST(ExecutorServicePoolTest, PerSessionFifoUnderRandomizedInterleaving) {
  constexpr int kSessions = 6;
  constexpr int kPerSession = 40;
  Youtopia db(PoolConfig(4));
  {
    std::string script;
    for (int s = 0; s < kSessions; ++s) {
      script += "CREATE TABLE t" + std::to_string(s) + " (seq INT);";
    }
    ASSERT_TRUE(db.ExecuteScript(script).ok());
  }

  // Completion order per session, recorded from the continuations.
  std::mutex mu;
  std::vector<std::vector<int>> completed(kSessions);

  // Submit from several producer threads in a shuffled order so the
  // pool sees a randomized interleaving; only the per-session relative
  // order is fixed (each producer owns disjoint sessions, submitting
  // its sessions' statements in sequence order).
  std::mt19937 rng(1234);
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      std::mt19937 local(1000 + p);
      // Producer p drives sessions s with s % 3 == p.
      std::vector<std::pair<int, int>> plan;  // (session, seq)
      for (int s = p; s < kSessions; s += 3) {
        for (int q = 0; q < kPerSession; ++q) plan.push_back({s, q});
      }
      // Shuffle across this producer's sessions while keeping each
      // session's seq order: sort-of-interleave by picking randomly
      // among sessions with remaining work.
      std::vector<int> next(kSessions, 0);
      std::vector<int> mine;
      for (int s = p; s < kSessions; s += 3) mine.push_back(s);
      size_t remaining = plan.size();
      while (remaining > 0) {
        const int s = mine[local() % mine.size()];
        if (next[s] >= kPerSession) continue;
        const int seq = next[s]++;
        --remaining;
        StatementTask task;
        task.sql = "INSERT INTO t" + std::to_string(s) + " VALUES (" +
                   std::to_string(seq) + ")";
        task.session = static_cast<uint64_t>(1000 + s);
        task.on_done = [&mu, &completed, s, seq](Result<RunOutcome> outcome) {
          ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
          std::lock_guard<std::mutex> lock(mu);
          completed[s].push_back(seq);
        };
        ASSERT_TRUE(db.executor_service().Submit(std::move(task)).ok());
      }
    });
  }
  for (auto& t : producers) t.join();
  ASSERT_TRUE(db.executor_service().Drain(milliseconds(30000)).ok());

  for (int s = 0; s < kSessions; ++s) {
    // Continuations fired in submission order...
    ASSERT_EQ(completed[s].size(), static_cast<size_t>(kPerSession));
    for (int q = 0; q < kPerSession; ++q) {
      EXPECT_EQ(completed[s][q], q) << "session " << s << " reordered";
    }
    // ...and the table contents (heap append order) agree.
    auto rows = db.Execute("SELECT seq FROM t" + std::to_string(s));
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->rows.size(), static_cast<size_t>(kPerSession));
    for (int q = 0; q < kPerSession; ++q) {
      EXPECT_EQ(rows->rows[static_cast<size_t>(q)].at(0).int64_value(), q);
    }
  }
}

TEST(ExecutorServicePoolTest, FifoHoldsAcrossConflictRequeues) {
  // All sessions hammer ONE table with X-lock statements: constant
  // conflicts and requeues, but each session's statements must still
  // apply in submission order (a requeued task retries before its
  // session's next task).
  constexpr int kSessions = 4;
  constexpr int kPerSession = 25;
  YoutopiaConfig config = PoolConfig(4);
  config.executor.default_statement_timeout = milliseconds(10000);
  Youtopia db(config);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (session INT, seq INT)").ok());

  for (int q = 0; q < kPerSession; ++q) {
    for (int s = 0; s < kSessions; ++s) {
      StatementTask task;
      task.sql = "INSERT INTO t VALUES (" + std::to_string(s) + ", " +
                 std::to_string(q) + ")";
      task.session = static_cast<uint64_t>(2000 + s);
      ASSERT_TRUE(db.executor_service().Submit(std::move(task)).ok());
    }
  }
  ASSERT_TRUE(db.executor_service().Drain(milliseconds(30000)).ok());

  auto rows = db.Execute("SELECT session, seq FROM t");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), static_cast<size_t>(kSessions * kPerSession));
  std::vector<int> next(kSessions, 0);
  for (const Tuple& row : rows->rows) {
    const int s = static_cast<int>(row.at(0).int64_value());
    const int q = static_cast<int>(row.at(1).int64_value());
    EXPECT_EQ(q, next[s]) << "session " << s << " applied out of order";
    next[s] = q + 1;
  }
}

// ---------------------------------------------------------------------
// Entangled parking.

TEST(ExecutorServicePoolTest, EntangledParkDoesNotHoldWorker) {
  // ONE worker: if the entangled wait held the worker, the regular
  // statements behind it could never execute and the partner below
  // could never be driven — the test would deadlock instead of passing.
  Youtopia db(PoolConfig(1));
  SetupFlights(&db);

  std::mutex mu;
  std::condition_variable cv;
  bool answered = false;
  Status answer_outcome = Status::Internal("callback never ran");

  StatementTask first;
  first.sql = PairSql("A", "B");
  first.owner = "A";
  first.session = 1;
  first.wait_for_answer = true;
  first.on_done = [&](Result<RunOutcome> outcome) {
    std::lock_guard<std::mutex> lock(mu);
    answered = true;
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->handle.has_value());
    answer_outcome = outcome->handle->Outcome().value_or(
        Status::Internal("no outcome"));
    cv.notify_all();
  };
  ASSERT_TRUE(db.executor_service().Submit(std::move(first)).ok());

  // The same session keeps working while its coordination waits: the
  // parked task occupies no worker and no FIFO slot.
  auto rows = db.executor_service().SubmitWithFuture([] {
    StatementTask task;
    task.sql = "SELECT fno FROM Flights WHERE dest='Paris'";
    task.session = 1;
    return task;
  }());
  ASSERT_TRUE(rows.get().ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_FALSE(answered);
  }
  EXPECT_GE(db.executor_service().stats().entangled_parked, 1u);

  // The partner arrives (other session); the pair closes and the
  // parked continuation fires from the completing worker.
  StatementTask partner;
  partner.sql = PairSql("B", "A");
  partner.owner = "B";
  partner.session = 2;
  ASSERT_TRUE(db.executor_service().Submit(std::move(partner)).ok());

  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, milliseconds(10000), [&] { return answered; }));
  EXPECT_TRUE(answer_outcome.ok()) << answer_outcome.ToString();
  EXPECT_EQ(db.coordinator().pending_count(), 0u);
}

// ---------------------------------------------------------------------
// Scripts through the pool: partial execution + mid-script requeue.

TEST(ExecutorServicePoolTest, ScriptMidErrorKeepsPartialExecution) {
  Youtopia db(PoolConfig(2));
  StatementTask task;
  task.sql = "CREATE TABLE a (x INT);"
             "INSERT INTO a VALUES (1);"
             "INSERT INTO nosuch VALUES (2);"
             "INSERT INTO a VALUES (3);";
  task.kind = StatementTask::Kind::kScript;
  auto outcome = db.executor_service().SubmitWithFuture(std::move(task)).get();
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
  // Partial semantics: everything before the failure applied, nothing
  // after it ran.
  auto rows = db.Execute("SELECT x FROM a");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0].at(0).int64_value(), 1);
}

TEST(ExecutorServicePoolTest, ScriptRequeueResumesWithoutReexecuting) {
  YoutopiaConfig config = PoolConfig(1);
  config.executor.default_statement_timeout = milliseconds(10000);
  Youtopia db(config);
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE a (x INT);"
                               "CREATE TABLE blocked (x INT);")
                  .ok());

  auto blocker = db.txn_manager().Begin();
  ASSERT_TRUE(db.txn_manager()
                  .lock_manager()
                  .TryAcquire(blocker->id(), "blocked", LockMode::kExclusive)
                  .ok());

  StatementTask task;
  task.sql = "INSERT INTO a VALUES (1);"
             "INSERT INTO blocked VALUES (2);"
             "INSERT INTO a VALUES (3);";
  task.kind = StatementTask::Kind::kScript;
  auto future = db.executor_service().SubmitWithFuture(std::move(task));
  while (db.executor_service().stats().lock_requeues == 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_TRUE(db.txn_manager().Commit(blocker.get()).ok());
  ASSERT_TRUE(future.get().ok());

  // Statement 1 ran exactly once despite the requeues of statement 2.
  auto rows = db.Execute("SELECT x FROM a");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
  auto blocked_rows = db.Execute("SELECT x FROM blocked");
  ASSERT_TRUE(blocked_rows.ok());
  EXPECT_EQ(blocked_rows->rows.size(), 1u);
}

// ---------------------------------------------------------------------
// Stats exposure.

TEST(ExecutorServiceStatsTest, AdminSnapshotCarriesExecutorStats) {
  Youtopia db(PoolConfig(2));
  // Through the Client façade — the path that rides the service.
  // (Youtopia::Execute itself stays a direct engine call.)
  Client client(&db);
  ASSERT_TRUE(client.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(db.executor_service().Drain(milliseconds(5000)).ok());
  AdminSnapshot snapshot = TakeAdminSnapshot(db);
  EXPECT_EQ(snapshot.executor.workers, 2u);
  EXPECT_GE(snapshot.executor.submitted, 2u);
  EXPECT_GE(snapshot.executor.executed, 2u);
  EXPECT_EQ(snapshot.executor.queue_depth, 0u);
  const std::string rendered = snapshot.ToString();
  EXPECT_NE(rendered.find("Executor service"), std::string::npos);
  EXPECT_NE(rendered.find("workers=2"), std::string::npos);
}

TEST(ExecutorServiceStatsTest, UtilizationStaysInUnitInterval) {
  Youtopia db(PoolConfig(2));
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  for (int i = 0; i < 20; ++i) {
    StatementTask task;
    task.sql = "INSERT INTO t VALUES (" + std::to_string(i) + ")";
    task.session = static_cast<uint64_t>(i % 4);
    ASSERT_TRUE(db.executor_service().Submit(std::move(task)).ok());
  }
  ASSERT_TRUE(db.executor_service().Drain(milliseconds(10000)).ok());
  const auto stats = db.executor_service().stats();
  EXPECT_GE(stats.WorkerUtilization(), 0.0);
  EXPECT_LE(stats.WorkerUtilization(), 1.0);
  EXPECT_GT(stats.busy_micros, 0u);
}

// ---------------------------------------------------------------------
// Admission control (design decision #12): queue depth at or above the
// high-water mark sheds new statements with kOverloaded — before any
// side effect, so the status is retryable — while entangled
// submissions, which never ride the statement queue, are never shed.

TEST(ExecutorServiceAdmissionTest, ShedsWithOverloadedAboveHighWater) {
  // One worker wedged behind a held X lock, high-water 1. Every
  // admitted statement is stuck, so after at most three Submits two are
  // parked in the queue (the worker can hold only one), queue depth
  // stays >= 1, and the next Submit must shed.
  YoutopiaConfig config = PoolConfig(1, /*capacity=*/16);
  config.executor.admission_high_water = 1;
  config.executor.default_statement_timeout = milliseconds(2000);
  Youtopia db(config);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());

  auto blocker = db.txn_manager().Begin();
  ASSERT_TRUE(db.txn_manager()
                  .lock_manager()
                  .TryAcquire(blocker->id(), "t", LockMode::kExclusive)
                  .ok());

  std::atomic<int> completions{0};
  auto make_task = [&](uint64_t session) {
    StatementTask task;
    task.sql = "INSERT INTO t VALUES (1)";
    task.session = session;
    task.on_done = [&](Result<RunOutcome>) { ++completions; };
    return task;
  };

  Status shed = Status::OK();
  int admitted = 0;
  for (uint64_t i = 1; i <= 4; ++i) {
    shed = db.executor_service().Submit(make_task(i));
    if (shed.code() == StatusCode::kOverloaded) break;
    ASSERT_TRUE(shed.ok());
    ++admitted;
  }
  EXPECT_EQ(shed.code(), StatusCode::kOverloaded);
  EXPECT_LE(admitted, 3);
  EXPECT_GE(db.executor_service().stats().shed, 1u);

  // TrySubmit sheds too — and with kOverloaded (over the mark), not
  // kTimedOut (full queue): the caller can tell policy from capacity.
  EXPECT_EQ(db.executor_service().TrySubmit(make_task(9)).code(),
            StatusCode::kOverloaded);

  ASSERT_TRUE(db.txn_manager().Commit(blocker.get()).ok());
  ASSERT_TRUE(db.executor_service().Drain(milliseconds(10000)).ok());
  EXPECT_EQ(completions.load(), admitted);
}

TEST(ExecutorServiceAdmissionTest, EntangledSubmissionsAreNeverShed) {
  YoutopiaConfig config = PoolConfig(1, /*capacity=*/16);
  config.executor.admission_high_water = 1;
  config.executor.default_statement_timeout = milliseconds(2000);
  Youtopia db(config);
  SetupFlights(&db);
  ASSERT_TRUE(db.Execute("CREATE TABLE wedge (x INT)").ok());

  // Wedge the pool on a table the entangled query never touches, so
  // only the *queue* is overloaded, not the data the coordination reads.
  auto blocker = db.txn_manager().Begin();
  ASSERT_TRUE(db.txn_manager()
                  .lock_manager()
                  .TryAcquire(blocker->id(), "wedge", LockMode::kExclusive)
                  .ok());

  // Drive the statement path over the high-water mark...
  StatementTask stuck;
  stuck.sql = "INSERT INTO wedge VALUES (1)";
  stuck.session = 1;
  ASSERT_TRUE(db.executor_service().Submit(std::move(stuck)).ok());
  for (uint64_t i = 2; i <= 4; ++i) {
    StatementTask task;
    task.sql = "INSERT INTO wedge VALUES (1)";
    task.session = i;
    const Status status = db.executor_service().Submit(std::move(task));
    ASSERT_TRUE(status.ok() || status.code() == StatusCode::kOverloaded);
  }

  // ...and an entangled submission still registers: it goes straight to
  // the coordinator, never through the shedding queue, because a
  // coordination that is already visible to other parties must not
  // vanish under load.
  Client client(&db, ClientOptions("Kramer"));
  auto handle = client.Submit(PairSql("Kramer", "Jerry"));
  ASSERT_TRUE(handle.ok());
  EXPECT_FALSE(handle->Done());
  EXPECT_GE(db.coordinator().pending_count(), 1u);
  ASSERT_TRUE(client.CancelAll().ok());

  ASSERT_TRUE(db.txn_manager().Commit(blocker.get()).ok());
  ASSERT_TRUE(db.executor_service().Drain(milliseconds(10000)).ok());
}

TEST(ExecutorServiceAdmissionTest, HighWaterOffNeverSheds) {
  // Default admission_high_water = 0 disables shedding entirely: a full
  // queue still means TrySubmit -> kTimedOut and Submit -> block, the
  // seed semantics.
  YoutopiaConfig config = PoolConfig(1, /*capacity=*/2);
  config.executor.default_statement_timeout = milliseconds(2000);
  Youtopia db(config);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());

  auto blocker = db.txn_manager().Begin();
  ASSERT_TRUE(db.txn_manager()
                  .lock_manager()
                  .TryAcquire(blocker->id(), "t", LockMode::kExclusive)
                  .ok());

  std::atomic<int> completions{0};
  auto make_task = [&](uint64_t session) {
    StatementTask task;
    task.sql = "INSERT INTO t VALUES (1)";
    task.session = session;
    task.on_done = [&](Result<RunOutcome>) { ++completions; };
    return task;
  };
  ASSERT_TRUE(db.executor_service().TrySubmit(make_task(1)).ok());
  ASSERT_TRUE(db.executor_service().TrySubmit(make_task(2)).ok());
  EXPECT_EQ(db.executor_service().TrySubmit(make_task(3)).code(),
            StatusCode::kTimedOut);
  EXPECT_EQ(db.executor_service().stats().shed, 0u);

  ASSERT_TRUE(db.txn_manager().Commit(blocker.get()).ok());
  ASSERT_TRUE(db.executor_service().Drain(milliseconds(10000)).ok());
  EXPECT_EQ(completions.load(), 2);
}

}  // namespace
}  // namespace youtopia
