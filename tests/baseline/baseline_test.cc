#include "baseline/middle_tier_coordinator.h"

#include <gtest/gtest.h>

#include <thread>

#include "travel/travel_schema.h"

namespace youtopia::baseline {
namespace {

using std::chrono::milliseconds;

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(travel::SetupFigure1(&db_).ok());
    coordinator_ = std::make_unique<MiddleTierCoordinator>(&db_);
    ASSERT_TRUE(coordinator_->Setup().ok());
  }

  Youtopia db_;
  std::unique_ptr<MiddleTierCoordinator> coordinator_;
};

TEST_F(BaselineTest, SetupIsIdempotent) {
  EXPECT_TRUE(coordinator_->Setup().ok());
}

TEST_F(BaselineTest, FirstRequestFilesProposal) {
  auto ticket = coordinator_->RequestSameFlight("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  EXPECT_FALSE(ticket->completed);
  auto poll = coordinator_->Poll(ticket->pid);
  ASSERT_TRUE(poll.ok());
  EXPECT_FALSE(poll->has_value());
}

TEST_F(BaselineTest, ReciprocalRequestCompletesBoth) {
  auto kramer = coordinator_->RequestSameFlight("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(kramer.ok());
  auto jerry = coordinator_->RequestSameFlight("Jerry", "Kramer", "Paris");
  ASSERT_TRUE(jerry.ok());
  EXPECT_TRUE(jerry->completed);

  auto resolved = coordinator_->Poll(kramer->pid);
  ASSERT_TRUE(resolved.ok());
  ASSERT_TRUE(resolved->has_value());
  EXPECT_EQ(resolved->value(), jerry->fno);

  // Both reservations exist on the same flight.
  auto reservations = db_.Execute("SELECT traveler, fno FROM Reservation");
  ASSERT_TRUE(reservations.ok());
  ASSERT_EQ(reservations->rows.size(), 2u);
  EXPECT_EQ(reservations->rows[0].at(1), reservations->rows[1].at(1));
}

TEST_F(BaselineTest, WaitForMatchTimesOutWithoutPartner) {
  auto ticket = coordinator_->RequestSameFlight("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(ticket.ok());
  auto result = coordinator_->WaitForMatch(ticket->pid, milliseconds(50),
                                           milliseconds(5));
  EXPECT_EQ(result.status().code(), StatusCode::kTimedOut);
}

TEST_F(BaselineTest, WaitForMatchSeesLatePartner) {
  auto ticket = coordinator_->RequestSameFlight("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(ticket.ok());
  std::thread partner([this] {
    std::this_thread::sleep_for(milliseconds(30));
    auto jerry = coordinator_->RequestSameFlight("Jerry", "Kramer", "Paris");
    ASSERT_TRUE(jerry.ok());
    EXPECT_TRUE(jerry->completed);
  });
  auto fno = coordinator_->WaitForMatch(ticket->pid, milliseconds(2000),
                                        milliseconds(5));
  partner.join();
  ASSERT_TRUE(fno.ok()) << fno.status();
  EXPECT_GT(fno.value(), 0);
}

TEST_F(BaselineTest, NoFlightToDestinationFails) {
  ASSERT_TRUE(
      coordinator_->RequestSameFlight("Kramer", "Jerry", "Atlantis").ok());
  auto jerry = coordinator_->RequestSameFlight("Jerry", "Kramer", "Atlantis");
  EXPECT_EQ(jerry.status().code(), StatusCode::kNotFound);
}

TEST_F(BaselineTest, DistinctPairsDoNotInterfere) {
  ASSERT_TRUE(coordinator_->RequestSameFlight("A", "B", "Paris").ok());
  auto elaine = coordinator_->RequestSameFlight("Elaine", "George", "Rome");
  ASSERT_TRUE(elaine.ok());
  EXPECT_FALSE(elaine->completed);  // wrong pair, no cross-matching
  auto george = coordinator_->RequestSameFlight("George", "Elaine", "Rome");
  ASSERT_TRUE(george.ok());
  EXPECT_TRUE(george->completed);
  EXPECT_EQ(george->fno, 136);  // the only Rome flight
}

TEST_F(BaselineTest, ConcurrentPairsAllComplete) {
  constexpr int kPairs = 8;
  std::vector<std::thread> threads;
  std::atomic<int> completed{0};
  for (int p = 0; p < kPairs; ++p) {
    threads.emplace_back([this, p, &completed] {
      const std::string a = "userA" + std::to_string(p);
      const std::string b = "userB" + std::to_string(p);
      auto mine = coordinator_->RequestSameFlight(a, b, "Paris");
      ASSERT_TRUE(mine.ok()) << mine.status();
      if (mine->completed) {
        ++completed;
        return;
      }
      auto fno = coordinator_->WaitForMatch(mine->pid, milliseconds(5000));
      if (fno.ok()) ++completed;
    });
    threads.emplace_back([this, p, &completed] {
      const std::string a = "userA" + std::to_string(p);
      const std::string b = "userB" + std::to_string(p);
      auto mine = coordinator_->RequestSameFlight(b, a, "Paris");
      ASSERT_TRUE(mine.ok()) << mine.status();
      if (mine->completed) {
        ++completed;
        return;
      }
      auto fno = coordinator_->WaitForMatch(mine->pid, milliseconds(5000));
      if (fno.ok()) ++completed;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), kPairs * 2);
  auto reservations = db_.Execute("SELECT * FROM Reservation");
  EXPECT_EQ(reservations->rows.size(), static_cast<size_t>(kPairs * 2));
}

}  // namespace
}  // namespace youtopia::baseline
