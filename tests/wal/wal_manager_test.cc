#include "wal/wal_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace youtopia::wal {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("wal_mgr_" + name)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

WalConfig TestConfig(const std::string& dir) {
  WalConfig config;
  config.enabled = true;
  config.dir = dir;
  // In-process tests reopen without losing the page cache, so skipping
  // the fsync syscall changes nothing they can observe.
  config.fsync = false;
  return config;
}

/// Full startup protocol, collecting whatever replays.
std::unique_ptr<WalManager> OpenWal(const WalConfig& config,
                                    std::vector<WalRecord>* replayed) {
  auto wal = std::make_unique<WalManager>(config);
  EXPECT_TRUE(wal->Open().ok());
  Status replay = wal->Replay([&](const WalRecord& record) {
    if (replayed != nullptr) replayed->push_back(record);
    return Status::OK();
  });
  EXPECT_TRUE(replay.ok()) << replay.ToString();
  EXPECT_TRUE(wal->OpenForAppend().ok());
  return wal;
}

TEST(WalManagerTest, AppendSyncReplayRoundTrip) {
  const std::string dir = FreshDir("roundtrip");
  auto config = TestConfig(dir);
  {
    auto wal = OpenWal(config, nullptr);
    auto lsn1 = wal->Append(WalRecord::Statement("CREATE TABLE t (a INT)"));
    ASSERT_TRUE(lsn1.ok());
    auto lsn2 = wal->Append(WalRecord::Submit(7, "alice", "SELECT 1"));
    ASSERT_TRUE(lsn2.ok());
    EXPECT_LT(lsn1.value(), lsn2.value());
    ASSERT_TRUE(wal->Sync(lsn2.value()).ok());
  }
  std::vector<WalRecord> replayed;
  auto wal = OpenWal(config, &replayed);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].type, WalRecordType::kStatement);
  EXPECT_EQ(replayed[0].sql, "CREATE TABLE t (a INT)");
  EXPECT_EQ(replayed[1].type, WalRecordType::kSubmit);
  EXPECT_EQ(replayed[1].query_id, 7u);
  EXPECT_EQ(replayed[1].owner, "alice");
  EXPECT_EQ(wal->stats().recovered_records, 2u);
}

TEST(WalManagerTest, InstallRecordCarriesGroupAndWrites) {
  const std::string dir = FreshDir("install");
  auto config = TestConfig(dir);
  {
    auto wal = OpenWal(config, nullptr);
    WalRedoWrite write;
    write.kind = WalRedoWrite::Kind::kInsert;
    write.table = "Reservation";
    write.rid = 3;
    write.tuple = Tuple({Value::String("alice"), Value::Int64(101)});
    ASSERT_TRUE(wal->Append(WalRecord::Install({4, 9}, {write})).ok());
    ASSERT_TRUE(wal->SyncAll().ok());
  }
  std::vector<WalRecord> replayed;
  OpenWal(config, &replayed);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].type, WalRecordType::kInstall);
  EXPECT_EQ(replayed[0].group, (std::vector<uint64_t>{4, 9}));
  ASSERT_EQ(replayed[0].writes.size(), 1u);
  EXPECT_EQ(replayed[0].writes[0].table, "Reservation");
  EXPECT_EQ(replayed[0].writes[0].rid, 3u);
  EXPECT_EQ(replayed[0].writes[0].tuple.at(1), Value::Int64(101));
}

TEST(WalManagerTest, InlineModeIsDurableWithoutSync) {
  const std::string dir = FreshDir("inline");
  auto config = TestConfig(dir);
  config.group_commit = false;
  {
    auto wal = OpenWal(config, nullptr);
    ASSERT_TRUE(wal->Append(WalRecord::Resolve(1)).ok());
    // No Sync: inline mode wrote it already.
  }
  std::vector<WalRecord> replayed;
  OpenWal(config, &replayed);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].type, WalRecordType::kResolve);
}

TEST(WalManagerTest, RotationSpansSegments) {
  const std::string dir = FreshDir("rotation");
  auto config = TestConfig(dir);
  config.segment_bytes = 256;  // force frequent rotation
  const int kRecords = 50;
  {
    auto wal = OpenWal(config, nullptr);
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(
          wal->Append(WalRecord::Statement("INSERT " + std::to_string(i)))
              .ok());
      ASSERT_TRUE(wal->SyncAll().ok());
    }
    EXPECT_GT(wal->stats().segments_created, 1u);
  }
  std::vector<WalRecord> replayed;
  OpenWal(config, &replayed);
  ASSERT_EQ(replayed.size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(replayed[i].sql, "INSERT " + std::to_string(i));
  }
}

TEST(WalManagerTest, TornTailIsTruncatedOnReopen) {
  const std::string dir = FreshDir("torn");
  auto config = TestConfig(dir);
  std::string segment;
  {
    auto wal = OpenWal(config, nullptr);
    ASSERT_TRUE(wal->Append(WalRecord::Statement("keep me")).ok());
    ASSERT_TRUE(wal->SyncAll().ok());
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("wal-", 0) == 0) {
      segment = entry.path().string();
    }
  }
  ASSERT_FALSE(segment.empty());
  {
    // A partial frame at the tail: length header promising more bytes
    // than exist — what a crash mid-write leaves behind.
    std::ofstream out(segment, std::ios::binary | std::ios::app);
    const uint32_t len = 1000;
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write("half", 4);
  }
  const auto torn_size = std::filesystem::file_size(segment);
  std::vector<WalRecord> replayed;
  auto wal = OpenWal(config, &replayed);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].sql, "keep me");
  // OpenForAppend truncated the garbage...
  EXPECT_LT(std::filesystem::file_size(segment), torn_size);
  // ...and the log accepts appends again.
  ASSERT_TRUE(wal->Append(WalRecord::Statement("after")).ok());
  ASSERT_TRUE(wal->SyncAll().ok());
  wal.reset();
  replayed.clear();
  OpenWal(config, &replayed);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[1].sql, "after");
}

TEST(WalManagerTest, CorruptedPayloadStopsReplayAtCrc) {
  const std::string dir = FreshDir("crc");
  auto config = TestConfig(dir);
  {
    auto wal = OpenWal(config, nullptr);
    ASSERT_TRUE(wal->Append(WalRecord::Statement("first")).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Statement("second")).ok());
    ASSERT_TRUE(wal->SyncAll().ok());
  }
  std::string segment;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("wal-", 0) == 0) {
      segment = entry.path().string();
    }
  }
  // Flip the last payload byte (inside "second"); its CRC now fails, so
  // replay must stop after "first" — corrupt tail, not garbage data.
  {
    std::fstream f(segment,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(-1, std::ios::end);
    char last = 0;
    f.get(last);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(last ^ 0x01));
  }
  std::vector<WalRecord> replayed;
  OpenWal(config, &replayed);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].sql, "first");
}

TEST(WalManagerTest, CheckpointTruncatesOldSegments) {
  const std::string dir = FreshDir("checkpoint");
  auto config = TestConfig(dir);
  config.segment_bytes = 128;
  {
    auto wal = OpenWal(config, nullptr);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          wal->Append(WalRecord::Statement("pre " + std::to_string(i))).ok());
    }
    ASSERT_TRUE(wal->SyncAll().ok());
    CheckpointState state;
    state.next_query_id = 42;
    CheckpointTable table;
    table.name = "t";
    auto schema =
        Schema::Create({Column{"a", DataType::kInt64, false}});
    ASSERT_TRUE(schema.ok());
    table.schema = schema.TakeValue();
    table.slot_count = 1;
    table.rows.emplace_back(0, Tuple({Value::Int64(5)}));
    state.tables.push_back(std::move(table));
    state.pending.push_back(CheckpointPending{7, "bob", "SELECT 1"});
    ASSERT_TRUE(wal->WriteCheckpoint(std::move(state)).ok());
    EXPECT_GT(wal->stats().segments_deleted, 0u);
    // Post-checkpoint records replay on top of the snapshot.
    ASSERT_TRUE(wal->Append(WalRecord::Statement("post")).ok());
    ASSERT_TRUE(wal->SyncAll().ok());
  }
  std::vector<WalRecord> replayed;
  auto wal = OpenWal(config, &replayed);
  ASSERT_TRUE(wal->checkpoint().has_value());
  const CheckpointState& cp = *wal->checkpoint();
  EXPECT_EQ(cp.next_query_id, 42u);
  ASSERT_EQ(cp.tables.size(), 1u);
  EXPECT_EQ(cp.tables[0].name, "t");
  ASSERT_EQ(cp.pending.size(), 1u);
  EXPECT_EQ(cp.pending[0].owner, "bob");
  // Only "post" is in the live log; the 20 pre-checkpoint records are
  // inside the snapshot and their segments are gone.
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].sql, "post");
}

TEST(WalManagerTest, GroupCommitConcurrentDurability) {
  const std::string dir = FreshDir("group");
  auto config = TestConfig(dir);
  const int kThreads = 8;
  const int kPerThread = 50;
  {
    auto wal = OpenWal(config, nullptr);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto lsn = wal->Append(WalRecord::Statement(
              "t" + std::to_string(t) + ":" + std::to_string(i)));
          ASSERT_TRUE(lsn.ok());
          ASSERT_TRUE(wal->Sync(lsn.value()).ok());
        }
      });
    }
    for (auto& thread : threads) thread.join();
    const WalStats stats = wal->stats();
    EXPECT_EQ(stats.records_appended,
              static_cast<size_t>(kThreads * kPerThread));
    // The whole point: strictly fewer flushes than records.
    EXPECT_LE(stats.group_commit_batches, stats.records_appended);
    EXPECT_GT(stats.group_commit_batches, 0u);
  }
  std::vector<WalRecord> replayed;
  OpenWal(config, &replayed);
  EXPECT_EQ(replayed.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(WalManagerTest, SimulateCrashLosesOnlyUnsynced) {
  const std::string dir = FreshDir("crash");
  auto config = TestConfig(dir);
  {
    auto wal = OpenWal(config, nullptr);
    auto acked = wal->Append(WalRecord::Statement("acked"));
    ASSERT_TRUE(acked.ok());
    ASSERT_TRUE(wal->Sync(acked.value()).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Statement("buffered")).ok());
    wal->SimulateCrash();
    EXPECT_TRUE(wal->crashed());
    // Everything after the crash fails.
    EXPECT_FALSE(wal->Append(WalRecord::Statement("late")).ok());
    EXPECT_FALSE(wal->SyncAll().ok());
  }
  std::vector<WalRecord> replayed;
  OpenWal(config, &replayed);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].sql, "acked");
}

TEST(WalManagerTest, CrashHookMidWriteLeavesTornRecord) {
  const std::string dir = FreshDir("hook");
  auto config = TestConfig(dir);
  {
    auto wal = OpenWal(config, nullptr);
    auto first = wal->Append(WalRecord::Statement("durable"));
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(wal->Sync(first.value()).ok());
    std::atomic<bool> armed{true};
    wal->SetCrashHook([&armed](WalManager::CrashPoint point) {
      return point == WalManager::CrashPoint::kMidWrite &&
             armed.exchange(false);
    });
    auto lsn = wal->Append(WalRecord::Statement("torn victim"));
    ASSERT_TRUE(lsn.ok());
    EXPECT_FALSE(wal->Sync(lsn.value()).ok());  // crashed mid-flush
    EXPECT_TRUE(wal->crashed());
  }
  // Replay survives the half-written frame: the acknowledged record is
  // there, the torn one is not, and the log reopens clean.
  std::vector<WalRecord> replayed;
  auto wal = OpenWal(config, &replayed);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].sql, "durable");
  ASSERT_TRUE(wal->Append(WalRecord::Statement("recovered")).ok());
  ASSERT_TRUE(wal->SyncAll().ok());
}

TEST(WalManagerTest, FsyncCountsWithRealFsync) {
  const std::string dir = FreshDir("fsync");
  auto config = TestConfig(dir);
  config.fsync = true;
  auto wal = OpenWal(config, nullptr);
  ASSERT_TRUE(wal->Append(WalRecord::Statement("x")).ok());
  ASSERT_TRUE(wal->SyncAll().ok());
  EXPECT_GT(wal->stats().fsyncs, 0u);
}

}  // namespace
}  // namespace youtopia::wal
