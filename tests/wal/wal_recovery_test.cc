// End-to-end durability: a Youtopia instance is destroyed (or "crashes"
// via WalManager::SimulateCrash) and a second instance over the same
// data directory must come back with the committed tables, the pending
// coordinations, and nothing that was never acknowledged.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "server/youtopia.h"
#include "travel/data_generator.h"
#include "travel/travel_schema.h"

namespace youtopia {
namespace {

using std::chrono::milliseconds;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("wal_rec_" + name)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

YoutopiaConfig WalConfigFor(const std::string& dir,
                            bool checkpoint_on_shutdown = false) {
  YoutopiaConfig config;
  config.wal.enabled = true;
  config.wal.dir = dir;
  config.wal.fsync = false;  // in-process restarts keep the page cache
  config.wal.checkpoint_on_shutdown = checkpoint_on_shutdown;
  return config;
}

std::vector<int64_t> ColumnInts(Youtopia* db, const std::string& sql) {
  auto rows = db->Execute(sql);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::vector<int64_t> out;
  if (rows.ok()) {
    for (const auto& row : rows->rows) out.push_back(row.at(0).int64_value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(WalRecoveryTest, WalOffIsSeedBehavior) {
  Youtopia db;  // default config: durability off
  EXPECT_EQ(db.wal(), nullptr);
  EXPECT_TRUE(db.recovery_status().ok());
  EXPECT_EQ(db.Checkpoint().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
}

TEST(WalRecoveryTest, DmlAndDdlSurviveRestart) {
  const std::string dir = FreshDir("dml_ddl");
  {
    Youtopia db(WalConfigFor(dir));
    ASSERT_TRUE(db.recovery_status().ok());
    ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (x INT NOT NULL);"
                                 "INSERT INTO t VALUES (1), (2);"
                                 "CREATE INDEX ON t (x);"
                                 "INSERT INTO t VALUES (3);"
                                 "DELETE FROM t WHERE x = 2;"
                                 "UPDATE t SET x = 30 WHERE x = 3;")
                    .ok());
  }
  Youtopia db(WalConfigFor(dir));
  ASSERT_TRUE(db.recovery_status().ok()) << db.recovery_status().ToString();
  EXPECT_TRUE(db.storage().catalog().HasTable("t"));
  EXPECT_EQ(ColumnInts(&db, "SELECT x FROM t"),
            (std::vector<int64_t>{1, 30}));
  // The index came back too: an indexed-equality probe finds the row.
  EXPECT_EQ(ColumnInts(&db, "SELECT x FROM t WHERE x = 30"),
            (std::vector<int64_t>{30}));
  EXPECT_GT(db.wal()->stats().recovered_records, 0u);
}

TEST(WalRecoveryTest, PendingSubmissionSurvivesRestartAndMatchesLater) {
  const std::string dir = FreshDir("pending");
  QueryId pending_id = 0;
  {
    Youtopia db(WalConfigFor(dir));
    ASSERT_TRUE(travel::SetupFigure1(&db).ok());
    auto k = db.Submit(
        "SELECT 'K', fno INTO ANSWER Reservation WHERE fno IN "
        "(SELECT fno FROM Flights WHERE dest='Paris') AND "
        "('J', fno) IN ANSWER Reservation CHOOSE 1",
        "K");
    ASSERT_TRUE(k.ok());
    EXPECT_FALSE(k->Done());
    pending_id = k->id();
  }
  Youtopia db(WalConfigFor(dir));
  ASSERT_TRUE(db.recovery_status().ok()) << db.recovery_status().ToString();
  // The submission is back in the pool, original id and owner intact.
  auto pending = db.coordinator().Pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, pending_id);
  EXPECT_EQ(pending[0].owner, "K");
  // The partner arrives after the restart; the recovered query matches
  // it exactly as if the process had never died.
  auto j = db.Submit(
      "SELECT 'J', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('K', fno) IN ANSWER Reservation CHOOSE 1",
      "J");
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE(j->Wait(milliseconds(200)).ok());
  auto rows = db.Execute("SELECT fno FROM Reservation");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
  EXPECT_TRUE(db.coordinator().Pending().empty());
  // Recovery seeded the id counter past the recovered query.
  EXPECT_GT(j->id(), pending_id);
}

TEST(WalRecoveryTest, MatchedGroupIsDurableAcrossRestart) {
  const std::string dir = FreshDir("matched");
  std::vector<int64_t> fnos_before;
  {
    Youtopia db(WalConfigFor(dir));
    ASSERT_TRUE(travel::SetupFigure1(&db).ok());
    auto kramer = db.Submit(
        "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN "
        "(SELECT fno FROM Flights WHERE dest='Paris') AND "
        "('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        "Kramer");
    ASSERT_TRUE(kramer.ok());
    auto jerry = db.Submit(
        "SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
        "(SELECT fno FROM Flights WHERE dest='Paris') AND "
        "('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
        "Jerry");
    ASSERT_TRUE(jerry.ok());
    ASSERT_TRUE(kramer->Wait(milliseconds(200)).ok());
    ASSERT_TRUE(jerry->Wait(milliseconds(200)).ok());
    fnos_before = ColumnInts(&db, "SELECT fno FROM Reservation");
    ASSERT_EQ(fnos_before.size(), 2u);
  }
  Youtopia db(WalConfigFor(dir));
  ASSERT_TRUE(db.recovery_status().ok()) << db.recovery_status().ToString();
  // Both answers of the matched group came back — and the group is
  // resolved, not pending (the install record carries both facts).
  EXPECT_EQ(ColumnInts(&db, "SELECT fno FROM Reservation"), fnos_before);
  EXPECT_TRUE(db.coordinator().Pending().empty());
}

TEST(WalRecoveryTest, CancelledSubmissionDoesNotComeBack) {
  const std::string dir = FreshDir("cancel");
  {
    Youtopia db(WalConfigFor(dir));
    ASSERT_TRUE(travel::SetupFigure1(&db).ok());
    auto k = db.Submit(
        "SELECT 'K', fno INTO ANSWER Reservation WHERE fno IN "
        "(SELECT fno FROM Flights WHERE dest='Paris') AND "
        "('J', fno) IN ANSWER Reservation CHOOSE 1",
        "K");
    ASSERT_TRUE(k.ok());
    ASSERT_TRUE(db.coordinator().Cancel(k->id()).ok());
  }
  Youtopia db(WalConfigFor(dir));
  ASSERT_TRUE(db.recovery_status().ok()) << db.recovery_status().ToString();
  EXPECT_TRUE(db.coordinator().Pending().empty());
}

TEST(WalRecoveryTest, CheckpointThenMoreWritesRestoresBoth) {
  const std::string dir = FreshDir("checkpoint");
  {
    Youtopia db(WalConfigFor(dir));
    ASSERT_TRUE(travel::SetupFigure1(&db).ok());
    auto k = db.Submit(
        "SELECT 'K', fno INTO ANSWER Reservation WHERE fno IN "
        "(SELECT fno FROM Flights WHERE dest='Berlin') AND "
        "('J', fno) IN ANSWER Reservation CHOOSE 1",
        "K");
    ASSERT_TRUE(k.ok());
    ASSERT_TRUE(db.Checkpoint().ok());
    // Post-checkpoint tail: replayed on top of the snapshot.
    ASSERT_TRUE(db.Execute("INSERT INTO Flights VALUES (200, 'Oslo')").ok());
  }
  Youtopia db(WalConfigFor(dir));
  ASSERT_TRUE(db.recovery_status().ok()) << db.recovery_status().ToString();
  auto fnos = ColumnInts(&db, "SELECT fno FROM Flights");
  EXPECT_EQ(fnos, (std::vector<int64_t>{122, 123, 134, 136, 200}));
  // The pending coordination was inside the checkpoint snapshot.
  auto pending = db.coordinator().Pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].owner, "K");
  // ...and it still works: a Berlin flight appearing plus the partner
  // closes the group.
  ASSERT_TRUE(db.Execute("INSERT INTO Flights VALUES (777, 'Berlin')").ok());
  auto j = db.Submit(
      "SELECT 'J', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Berlin') AND "
      "('K', fno) IN ANSWER Reservation CHOOSE 1",
      "J");
  ASSERT_TRUE(j.ok());
  EXPECT_TRUE(j->Wait(milliseconds(200)).ok());
}

TEST(WalRecoveryTest, ShutdownCheckpointMakesRestartReplayNothing) {
  const std::string dir = FreshDir("shutdown_cp");
  {
    Youtopia db(WalConfigFor(dir, /*checkpoint_on_shutdown=*/true));
    ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (x INT NOT NULL);"
                                 "INSERT INTO t VALUES (7);")
                    .ok());
  }
  Youtopia db(WalConfigFor(dir, /*checkpoint_on_shutdown=*/true));
  ASSERT_TRUE(db.recovery_status().ok()) << db.recovery_status().ToString();
  EXPECT_EQ(ColumnInts(&db, "SELECT x FROM t"), (std::vector<int64_t>{7}));
  // Everything came from the snapshot; the record log was empty.
  EXPECT_EQ(db.wal()->stats().recovered_records, 0u);
}

TEST(WalRecoveryTest, SimulatedCrashKeepsOnlyAcknowledgedWork) {
  const std::string dir = FreshDir("crash");
  {
    // checkpoint_on_shutdown=true exercises the dtor guard: after a
    // crash the final checkpoint must NOT run (it would snapshot state
    // whose log records were lost).
    Youtopia db(WalConfigFor(dir, /*checkpoint_on_shutdown=*/true));
    ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (x INT NOT NULL);"
                                 "INSERT INTO t VALUES (1);")
                    .ok());
    db.wal()->SimulateCrash();
    // Work after the crash fails and must not survive.
    EXPECT_FALSE(db.Execute("INSERT INTO t VALUES (2)").ok());
  }
  Youtopia db(WalConfigFor(dir));
  ASSERT_TRUE(db.recovery_status().ok()) << db.recovery_status().ToString();
  EXPECT_EQ(ColumnInts(&db, "SELECT x FROM t"), (std::vector<int64_t>{1}));
}

TEST(WalRecoveryTest, RecoveredStateMatchesLiveStateExactly) {
  // Differential: run the same script against a durable and an
  // in-memory instance, restart the durable one, and diff every table.
  const std::string dir = FreshDir("differential");
  const char* kScript =
      "CREATE TABLE a (x INT NOT NULL);"
      "CREATE TABLE b (y INT NOT NULL, note TEXT NOT NULL);"
      "INSERT INTO a VALUES (1), (2), (3);"
      "INSERT INTO b VALUES (10, 'ten'), (20, 'twenty');"
      "DELETE FROM a WHERE x = 2;"
      "UPDATE b SET note = 'TEN' WHERE y = 10;";
  Youtopia reference;  // wal off
  ASSERT_TRUE(reference.ExecuteScript(kScript).ok());
  {
    Youtopia db(WalConfigFor(dir));
    ASSERT_TRUE(db.ExecuteScript(kScript).ok());
  }
  Youtopia recovered(WalConfigFor(dir));
  ASSERT_TRUE(recovered.recovery_status().ok());
  for (const std::string sql :
       {"SELECT x FROM a", "SELECT y FROM b WHERE note = 'TEN'",
        "SELECT y FROM b"}) {
    EXPECT_EQ(ColumnInts(&recovered, sql), ColumnInts(&reference, sql))
        << sql;
  }
}

// Regression: the travel dataset must be seeded through the logged
// statement path. An earlier generator wrote rows straight into the
// StorageEngine — invisible to the WAL — so a kill before the first
// checkpoint replayed the log into *empty* Flights/Seats/Hotels tables,
// every booking domain evaluated empty, and no post-recovery pair could
// ever match (each one timed out in the pending pool).
TEST(WalRecoveryTest, SeededDatasetSurvivesCrashReplayAndNewPairsMatch) {
  const std::string dir = FreshDir("travel_crash");
  {
    Youtopia db(WalConfigFor(dir));
    ASSERT_TRUE(db.recovery_status().ok());
    ASSERT_TRUE(travel::CreateTravelSchema(&db).ok());
    travel::DataGeneratorConfig data;
    data.cities = {"NewYork", "Paris"};
    data.flights_per_route_per_day = 2;
    data.days = 1;
    data.seats_per_flight = 2;
    auto generated = travel::GenerateTravelData(&db, data);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    ASSERT_GT(generated->flights, 0u);
    // Hard crash: no shutdown checkpoint, recovery is pure log replay.
    db.wal()->SimulateCrash();
  }
  Youtopia db(WalConfigFor(dir));
  ASSERT_TRUE(db.recovery_status().ok()) << db.recovery_status().ToString();
  // The domain tables replayed with their rows...
  EXPECT_EQ(ColumnInts(&db, "SELECT fno FROM Flights WHERE dest = 'Paris'")
                .size(),
            2u);
  EXPECT_FALSE(ColumnInts(&db, "SELECT fno FROM Seats").empty());
  EXPECT_FALSE(ColumnInts(&db, "SELECT hid FROM Hotels").empty());
  // ...so a brand-new pair booked against the recovered state matches.
  auto kramer = db.Submit(
      "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
      "Kramer");
  ASSERT_TRUE(kramer.ok()) << kramer.status().ToString();
  auto jerry = db.Submit(
      "SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
      "Jerry");
  ASSERT_TRUE(jerry.ok()) << jerry.status().ToString();
  ASSERT_TRUE(jerry->Wait(milliseconds(200)).ok());
  EXPECT_TRUE(kramer->Done());
  auto rows = db.Execute("SELECT fno FROM Reservation");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
}

}  // namespace
}  // namespace youtopia
