// Shared harness for the kill-and-recover differential tests: run a
// randomized workload (regular DML + entangled pair submissions +
// occasional checkpoints) against a durable engine, crash it at a
// randomized point inside a WAL flush via the crash hook, restart over
// the same directory, and check the durability invariants:
//
//   1. recovered rows  ⊆  issued rows       (nothing invented)
//   2. acked rows      ⊆  recovered rows    (nothing acknowledged lost)
//   3. every pair key appears 0-or-2 times in the answer relation — a
//      matched group is never half-durable
//   4. every acked, unresolved submission is back in the pending pool
//      (or was resolved by a match); every pending entry was issued
//
// The short in-tree test (wal_crash_test) runs a handful of seeds; the
// integration sweep (wal_crash_sweep_test) runs the full randomized
// sweep across 100+ crash points.

#ifndef YOUTOPIA_TESTS_WAL_CRASH_HARNESS_H_
#define YOUTOPIA_TESTS_WAL_CRASH_HARNESS_H_

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "server/youtopia.h"
#include "travel/travel_schema.h"

namespace youtopia::wal_crash {

inline std::string IterationDir(const std::string& tag, uint64_t seed) {
  return (std::filesystem::temp_directory_path() /
          ("wal_crash_" + tag + "_" + std::to_string(seed)))
      .string();
}

/// Arms a crash that fires once `countdown` crash-point callbacks have
/// been observed, optionally restricted to one CrashPoint kind
/// (`filter` in 0..2; 3 = any point counts).
inline void ArmCrash(wal::WalManager* wal, int filter, int countdown) {
  auto remaining = std::make_shared<std::atomic<int>>(countdown);
  wal->SetCrashHook([filter, remaining](wal::WalManager::CrashPoint point) {
    if (filter != 3 && static_cast<int>(point) != filter) return false;
    return remaining->fetch_sub(1) <= 1;
  });
}

/// One randomized kill-and-recover iteration. Every EXPECT failure
/// names the seed, so a sweep failure reproduces as a single call.
inline void RunCrashIteration(const std::string& tag, uint64_t seed,
                              int max_ops) {
  Random rng(seed);
  const std::string dir = IterationDir(tag, seed);
  std::filesystem::remove_all(dir);

  YoutopiaConfig config;
  config.wal.enabled = true;
  config.wal.dir = dir;
  config.wal.fsync = false;  // crash = losing the process, not the disk
  config.wal.checkpoint_on_shutdown = false;
  config.wal.group_commit = rng.NextBool();
  if (rng.NextBool(0.3)) {
    // Tiny segments: the crash point lands near rotation boundaries.
    config.wal.segment_bytes = 256 + rng.NextBelow(4096);
  }

  std::set<int64_t> issued, acked;
  std::set<std::string> issued_travelers, acked_travelers;
  size_t pair_slots = 0;  // two slots (K/J members) per pair index

  {
    Youtopia db(config);
    ASSERT_TRUE(db.recovery_status().ok()) << "seed " << seed;
    ASSERT_TRUE(travel::SetupFigure1(&db).ok()) << "seed " << seed;
    ASSERT_TRUE(db.Execute("CREATE TABLE Ledger (v INT NOT NULL)").ok())
        << "seed " << seed;

    ArmCrash(db.wal(), static_cast<int>(rng.NextBelow(4)),
             static_cast<int>(rng.NextInRange(1, 60)));

    for (int i = 0; i < max_ops && !db.wal()->crashed(); ++i) {
      if (rng.NextBool(0.3)) {
        const std::string index = std::to_string(pair_slots / 2);
        const bool first = pair_slots % 2 == 0;
        const std::string self = (first ? "K" : "J") + index;
        const std::string partner = (first ? "J" : "K") + index;
        ++pair_slots;
        issued_travelers.insert(self);
        auto handle = db.Submit(
            "SELECT '" + self +
                "', fno INTO ANSWER Reservation WHERE fno IN "
                "(SELECT fno FROM Flights WHERE dest='Paris') AND ('" +
                partner + "', fno) IN ANSWER Reservation CHOOSE 1",
            self);
        if (handle.ok()) acked_travelers.insert(self);
      } else {
        issued.insert(i);
        if (db.Execute("INSERT INTO Ledger VALUES (" + std::to_string(i) +
                       ")")
                .ok()) {
          acked.insert(i);
        }
      }
      if (rng.NextBool(0.05)) (void)db.Checkpoint();
    }
    // The workload outran the countdown: kill the process anyway, so
    // every iteration ends in a crash (buffered records lost).
    if (!db.wal()->crashed()) db.wal()->SimulateCrash();
  }

  Youtopia db(config);
  ASSERT_TRUE(db.recovery_status().ok())
      << "seed " << seed << ": " << db.recovery_status().ToString();

  // 1 + 2: recovered ⊆ issued and acked ⊆ recovered.
  std::set<int64_t> recovered;
  auto rows = db.Execute("SELECT v FROM Ledger");
  ASSERT_TRUE(rows.ok()) << "seed " << seed;
  for (const auto& row : rows->rows) {
    recovered.insert(row.at(0).int64_value());
  }
  for (int64_t v : recovered) {
    EXPECT_TRUE(issued.count(v)) << "seed " << seed << ": invented row " << v;
  }
  for (int64_t v : acked) {
    EXPECT_TRUE(recovered.count(v))
        << "seed " << seed << ": acknowledged row " << v << " lost";
  }

  // 3: pair atomicity in the answer relation.
  std::map<std::string, int> answer_count;
  auto travelers = db.Execute("SELECT traveler FROM Reservation");
  ASSERT_TRUE(travelers.ok()) << "seed " << seed;
  for (const auto& row : travelers->rows) {
    ++answer_count[row.at(0).string_value()];
  }
  for (size_t p = 0; p < (pair_slots + 1) / 2; ++p) {
    const int k = answer_count["K" + std::to_string(p)];
    const int j = answer_count["J" + std::to_string(p)];
    EXPECT_EQ(k, j) << "seed " << seed << ": pair " << p << " half-durable";
    EXPECT_LE(k, 1) << "seed " << seed << ": pair " << p << " duplicated";
  }

  // 4: acked submissions are pending or answered; pending ⊆ issued.
  std::set<std::string> pending_owners;
  for (const auto& info : db.coordinator().Pending()) {
    pending_owners.insert(info.owner);
  }
  for (const auto& traveler : acked_travelers) {
    EXPECT_TRUE(pending_owners.count(traveler) > 0 ||
                answer_count[traveler] > 0)
        << "seed " << seed << ": acknowledged submission " << traveler
        << " vanished";
  }
  for (const auto& owner : pending_owners) {
    EXPECT_TRUE(issued_travelers.count(owner))
        << "seed " << seed << ": phantom pending " << owner;
  }

  std::filesystem::remove_all(dir);
}

}  // namespace youtopia::wal_crash

#endif  // YOUTOPIA_TESTS_WAL_CRASH_HARNESS_H_
