// Short kill-and-recover differential test (a handful of randomized
// crash points — fast enough for every CI run) plus the
// mid-group-commit crash: concurrent sessions sharing a leader flush
// that dies halfway through its batch. The full ≥100-point sweep lives
// in tests/integration/wal_crash_sweep_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "crash_harness.h"

namespace youtopia {
namespace {

TEST(WalCrashTest, RandomizedCrashPointsShort) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    wal_crash::RunCrashIteration("short", seed, /*max_ops=*/30);
    if (::testing::Test::HasFailure()) break;  // first seed is enough
  }
}

TEST(WalCrashTest, MidGroupCommitCrashWithConcurrentSessions) {
  // Several sessions commit concurrently, so one leader flush carries
  // records from many of them; the hook kills the process after half
  // the batch hits disk. Per-session inserts are sequential, so each
  // recovered table must be an exact prefix of what that session
  // issued, covering at least everything it was acknowledged.
  constexpr int kSessions = 4;
  constexpr int kInsertsPerSession = 120;
  for (uint64_t seed = 100; seed < 103; ++seed) {
    Random rng(seed);
    const std::string dir = wal_crash::IterationDir("midgroup", seed);
    std::filesystem::remove_all(dir);

    YoutopiaConfig config;
    config.wal.enabled = true;
    config.wal.dir = dir;
    config.wal.fsync = false;
    config.wal.group_commit = true;
    config.wal.checkpoint_on_shutdown = false;

    std::vector<int> acked(kSessions, 0);
    {
      Youtopia db(config);
      ASSERT_TRUE(db.recovery_status().ok());
      for (int s = 0; s < kSessions; ++s) {
        ASSERT_TRUE(db.Execute("CREATE TABLE t" + std::to_string(s) +
                               " (v INT NOT NULL)")
                        .ok());
      }
      wal_crash::ArmCrash(
          db.wal(),
          /*filter=*/static_cast<int>(wal::WalManager::CrashPoint::kMidWrite),
          /*countdown=*/static_cast<int>(rng.NextInRange(3, 40)));

      std::vector<std::thread> threads;
      for (int s = 0; s < kSessions; ++s) {
        threads.emplace_back([&db, &acked, s] {
          const std::string table = "t" + std::to_string(s);
          for (int i = 0; i < kInsertsPerSession; ++i) {
            if (!db.Execute("INSERT INTO " + table + " VALUES (" +
                            std::to_string(i) + ")")
                     .ok()) {
              break;  // the crash: everything after is refused
            }
            acked[s] = i + 1;
          }
        });
      }
      for (auto& thread : threads) thread.join();
      if (!db.wal()->crashed()) db.wal()->SimulateCrash();
    }

    Youtopia db(config);
    ASSERT_TRUE(db.recovery_status().ok())
        << "seed " << seed << ": " << db.recovery_status().ToString();
    for (int s = 0; s < kSessions; ++s) {
      auto rows = db.Execute("SELECT v FROM t" + std::to_string(s));
      ASSERT_TRUE(rows.ok()) << "seed " << seed;
      std::vector<int64_t> values;
      for (const auto& row : rows->rows) {
        values.push_back(row.at(0).int64_value());
      }
      std::sort(values.begin(), values.end());
      // Exact prefix 0..k-1: log order extends each session's commit
      // order, and replay stops at the torn frame.
      const int k = static_cast<int>(values.size());
      EXPECT_GE(k, acked[s]) << "seed " << seed << " session " << s
                             << ": acknowledged insert lost";
      for (int i = 0; i < k; ++i) {
        EXPECT_EQ(values[i], i)
            << "seed " << seed << " session " << s << ": not a prefix";
      }
    }
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace youtopia
