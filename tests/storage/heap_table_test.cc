#include "storage/heap_table.h"

#include <gtest/gtest.h>

#include <thread>

namespace youtopia {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64, false},
                 {"name", DataType::kString, true}});
}

Tuple Row(int64_t id, const std::string& name) {
  return Tuple({Value::Int64(id), Value::String(name)});
}

TEST(HeapTableTest, InsertAndGet) {
  HeapTable table("t", TestSchema());
  auto rid = table.Insert(Row(1, "a"));
  ASSERT_TRUE(rid.ok());
  auto got = table.Get(rid.value());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->at(0).int64_value(), 1);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.Contains(rid.value()));
}

TEST(HeapTableTest, InsertValidatesSchema) {
  HeapTable table("t", TestSchema());
  EXPECT_FALSE(table.Insert(Tuple({Value::Int64(1)})).ok());  // arity
  EXPECT_FALSE(
      table.Insert(Tuple({Value::Null(), Value::String("x")})).ok());
  EXPECT_FALSE(
      table.Insert(Tuple({Value::String("x"), Value::String("y")})).ok());
}

TEST(HeapTableTest, RowIdsAreSequentialAndNeverReused) {
  HeapTable table("t", TestSchema());
  RowId first = table.Insert(Row(1, "a")).value();
  RowId second = table.Insert(Row(2, "b")).value();
  EXPECT_EQ(second, first + 1);
  ASSERT_TRUE(table.Delete(first).ok());
  RowId third = table.Insert(Row(3, "c")).value();
  EXPECT_GT(third, second);  // tombstoned slot not reused
  EXPECT_FALSE(table.Get(first).ok());
}

TEST(HeapTableTest, DeleteTombstones) {
  HeapTable table("t", TestSchema());
  RowId rid = table.Insert(Row(1, "a")).value();
  EXPECT_TRUE(table.Delete(rid).ok());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.Contains(rid));
  EXPECT_EQ(table.Delete(rid).code(), StatusCode::kNotFound);
  EXPECT_EQ(table.Delete(999).code(), StatusCode::kNotFound);
}

TEST(HeapTableTest, UpdateInPlace) {
  HeapTable table("t", TestSchema());
  RowId rid = table.Insert(Row(1, "a")).value();
  ASSERT_TRUE(table.Update(rid, Row(1, "z")).ok());
  EXPECT_EQ(table.Get(rid)->at(1).string_value(), "z");
  EXPECT_FALSE(table.Update(rid, Tuple({Value::Int64(1)})).ok());
  EXPECT_EQ(table.Update(999, Row(1, "x")).code(), StatusCode::kNotFound);
}

TEST(HeapTableTest, ScanReturnsLiveRowsInRidOrder) {
  HeapTable table("t", TestSchema());
  RowId r0 = table.Insert(Row(10, "a")).value();
  RowId r1 = table.Insert(Row(11, "b")).value();
  RowId r2 = table.Insert(Row(12, "c")).value();
  ASSERT_TRUE(table.Delete(r1).ok());
  auto rows = table.Scan();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, r0);
  EXPECT_EQ(rows[1].first, r2);
  EXPECT_EQ(rows[1].second.at(0).int64_value(), 12);
}

TEST(HeapTableTest, ClearRemovesAll) {
  HeapTable table("t", TestSchema());
  table.Insert(Row(1, "a")).value();
  table.Insert(Row(2, "b")).value();
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.Scan().empty());
}

TEST(HeapTableTest, ConcurrentInsertsAreLinearized) {
  HeapTable table("t", TestSchema());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(table.Insert(Row(t * 1000 + i, "x")).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(table.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(HeapTableTest, CoercionHappensAtInsert) {
  Schema schema({{"price", DataType::kDouble, false}});
  HeapTable table("t", schema);
  RowId rid = table.Insert(Tuple({Value::Int64(10)})).value();
  EXPECT_EQ(table.Get(rid)->at(0).type(), DataType::kDouble);
}

}  // namespace
}  // namespace youtopia
