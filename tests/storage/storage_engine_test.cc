#include "storage/storage_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace youtopia {
namespace {

class StorageEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .CreateTable("Flights",
                                 Schema({{"fno", DataType::kInt64, false},
                                         {"dest", DataType::kString, false}}))
                    .ok());
  }

  Tuple Flight(int64_t fno, const std::string& dest) {
    return Tuple({Value::Int64(fno), Value::String(dest)});
  }

  StorageEngine engine_;
};

TEST_F(StorageEngineTest, CreateDuplicateFails) {
  EXPECT_EQ(engine_.CreateTable("flights", Schema(std::vector<Column>{})).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(StorageEngineTest, InsertGetScan) {
  auto rid = engine_.Insert("Flights", Flight(122, "Paris"));
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(engine_.Get("Flights", rid.value())->at(0).int64_value(), 122);
  ASSERT_TRUE(engine_.Insert("Flights", Flight(136, "Rome")).ok());
  EXPECT_EQ(engine_.Scan("Flights")->size(), 2u);
  EXPECT_EQ(engine_.TableSize("Flights").value(), 2u);
}

TEST_F(StorageEngineTest, OperationsOnMissingTableFail) {
  EXPECT_FALSE(engine_.Insert("Nope", Flight(1, "x")).ok());
  EXPECT_FALSE(engine_.Scan("Nope").ok());
  EXPECT_FALSE(engine_.Get("Nope", 0).ok());
  EXPECT_FALSE(engine_.Delete("Nope", 0).ok());
  EXPECT_FALSE(engine_.TableSize("Nope").ok());
}

TEST_F(StorageEngineTest, DropRemovesTableAndData) {
  ASSERT_TRUE(engine_.Insert("Flights", Flight(1, "Paris")).ok());
  ASSERT_TRUE(engine_.DropTable("Flights").ok());
  EXPECT_FALSE(engine_.Scan("Flights").ok());
  EXPECT_FALSE(engine_.catalog().HasTable("Flights"));
  // Re-creating after drop works.
  EXPECT_TRUE(engine_
                  .CreateTable("Flights",
                               Schema({{"fno", DataType::kInt64, false}}))
                  .ok());
}

TEST_F(StorageEngineTest, IndexMaintainedOnInsert) {
  ASSERT_TRUE(engine_.CreateIndex("Flights", "dest").ok());
  ASSERT_TRUE(engine_.Insert("Flights", Flight(122, "Paris")).ok());
  ASSERT_TRUE(engine_.Insert("Flights", Flight(123, "Paris")).ok());
  ASSERT_TRUE(engine_.Insert("Flights", Flight(136, "Rome")).ok());
  auto rids = engine_.IndexLookup("Flights", "dest", Value::String("Paris"));
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 2u);
  EXPECT_TRUE(engine_.HasIndex("Flights", "dest"));
  EXPECT_FALSE(engine_.HasIndex("Flights", "fno"));
}

TEST_F(StorageEngineTest, IndexBackfillsExistingRows) {
  ASSERT_TRUE(engine_.Insert("Flights", Flight(122, "Paris")).ok());
  ASSERT_TRUE(engine_.CreateIndex("Flights", "dest").ok());
  auto rids = engine_.IndexLookup("Flights", "dest", Value::String("Paris"));
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 1u);
}

TEST_F(StorageEngineTest, IndexMaintainedOnDeleteAndUpdate) {
  ASSERT_TRUE(engine_.CreateIndex("Flights", "dest").ok());
  auto rid = engine_.Insert("Flights", Flight(122, "Paris"));
  ASSERT_TRUE(rid.ok());

  ASSERT_TRUE(engine_.Update("Flights", rid.value(), Flight(122, "Rome")).ok());
  EXPECT_TRUE(
      engine_.IndexLookup("Flights", "dest", Value::String("Paris"))->empty());
  EXPECT_EQ(
      engine_.IndexLookup("Flights", "dest", Value::String("Rome"))->size(),
      1u);

  ASSERT_TRUE(engine_.Delete("Flights", rid.value()).ok());
  EXPECT_TRUE(
      engine_.IndexLookup("Flights", "dest", Value::String("Rome"))->empty());
}

TEST_F(StorageEngineTest, DuplicateIndexFails) {
  ASSERT_TRUE(engine_.CreateIndex("Flights", "dest").ok());
  EXPECT_EQ(engine_.CreateIndex("Flights", "dest").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(StorageEngineTest, IndexOnMissingColumnOrTableFails) {
  EXPECT_FALSE(engine_.CreateIndex("Flights", "nope").ok());
  EXPECT_FALSE(engine_.CreateIndex("Nope", "dest").ok());
  EXPECT_FALSE(
      engine_.IndexLookup("Flights", "dest", Value::String("Paris")).ok());
}

TEST_F(StorageEngineTest, CatalogRecordsIndexedColumns) {
  ASSERT_TRUE(engine_.CreateIndex("Flights", "dest").ok());
  auto info = engine_.catalog().GetTable("Flights");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->indexed_columns, std::vector<size_t>{1});
}

}  // namespace
}  // namespace youtopia
