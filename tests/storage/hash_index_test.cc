#include "storage/hash_index.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace youtopia {
namespace {

TEST(HashIndexTest, InsertAndLookup) {
  HashIndex index(0);
  index.Insert(Value::String("Paris"), 1);
  index.Insert(Value::String("Paris"), 2);
  index.Insert(Value::String("Rome"), 3);
  auto paris = index.Lookup(Value::String("Paris"));
  std::sort(paris.begin(), paris.end());
  EXPECT_EQ(paris, (std::vector<RowId>{1, 2}));
  EXPECT_EQ(index.Lookup(Value::String("Rome")),
            std::vector<RowId>{3});
  EXPECT_TRUE(index.Lookup(Value::String("Berlin")).empty());
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.column_index(), 0u);
}

TEST(HashIndexTest, EraseRemovesOnePosting) {
  HashIndex index(1);
  index.Insert(Value::Int64(122), 5);
  index.Insert(Value::Int64(122), 6);
  index.Erase(Value::Int64(122), 5);
  EXPECT_EQ(index.Lookup(Value::Int64(122)), std::vector<RowId>{6});
  index.Erase(Value::Int64(122), 6);
  EXPECT_TRUE(index.Lookup(Value::Int64(122)).empty());
  EXPECT_EQ(index.size(), 0u);
}

TEST(HashIndexTest, EraseMissingIsNoOp) {
  HashIndex index(0);
  index.Erase(Value::Int64(1), 1);  // empty index
  index.Insert(Value::Int64(1), 1);
  index.Erase(Value::Int64(1), 99);  // wrong rid
  EXPECT_EQ(index.size(), 1u);
  index.Erase(Value::Int64(2), 1);  // wrong key
  EXPECT_EQ(index.size(), 1u);
}

TEST(HashIndexTest, DistinguishesValueTypes) {
  HashIndex index(0);
  index.Insert(Value::Int64(1), 10);
  index.Insert(Value::String("1"), 20);
  EXPECT_EQ(index.Lookup(Value::Int64(1)), std::vector<RowId>{10});
  EXPECT_EQ(index.Lookup(Value::String("1")), std::vector<RowId>{20});
}

TEST(HashIndexTest, NullKeysWork) {
  HashIndex index(0);
  index.Insert(Value::Null(), 7);
  EXPECT_EQ(index.Lookup(Value::Null()), std::vector<RowId>{7});
}

}  // namespace
}  // namespace youtopia
