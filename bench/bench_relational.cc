// Experiment SUB (DESIGN.md): substrate microbenchmarks — the storage
// and execution engine operations every coordination round bottoms out
// in (scans, index probes, inserts, plan execution).

#include <benchmark/benchmark.h>

#include "exec/executor.h"
#include "sql/parser.h"
#include "storage/storage_engine.h"

namespace youtopia::bench {
namespace {

std::unique_ptr<StorageEngine> MakeEngine(int rows, bool with_index) {
  auto engine = std::make_unique<StorageEngine>();
  Status s = engine->CreateTable(
      "Flights", Schema({{"fno", DataType::kInt64, false},
                         {"dest", DataType::kString, false},
                         {"price", DataType::kInt64, false}}));
  if (!s.ok()) std::abort();
  if (with_index) {
    if (!engine->CreateIndex("Flights", "dest").ok()) std::abort();
  }
  for (int f = 0; f < rows; ++f) {
    auto rid = engine->Insert(
        "Flights", Tuple({Value::Int64(f),
                          Value::String("City" + std::to_string(f % 16)),
                          Value::Int64(100 + f % 900)}));
    if (!rid.ok()) std::abort();
  }
  return engine;
}

void BM_HeapInsert(benchmark::State& state) {
  auto engine = MakeEngine(0, /*with_index=*/false);
  int64_t f = 0;
  for (auto _ : state) {
    auto rid = engine->Insert(
        "Flights", Tuple({Value::Int64(f++), Value::String("City0"),
                          Value::Int64(100)}));
    benchmark::DoNotOptimize(rid);
  }
}
BENCHMARK(BM_HeapInsert);

void BM_IndexedInsert(benchmark::State& state) {
  auto engine = MakeEngine(0, /*with_index=*/true);
  int64_t f = 0;
  for (auto _ : state) {
    auto rid = engine->Insert(
        "Flights", Tuple({Value::Int64(f++), Value::String("City0"),
                          Value::Int64(100)}));
    benchmark::DoNotOptimize(rid);
  }
}
BENCHMARK(BM_IndexedInsert);

void BM_FullScan(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<int>(state.range(0)),
                           /*with_index=*/false);
  for (auto _ : state) {
    auto rows = engine->Scan("Flights");
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_FullScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IndexProbe(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<int>(state.range(0)),
                           /*with_index=*/true);
  for (auto _ : state) {
    auto rids = engine->IndexLookup("Flights", "dest",
                                    Value::String("City3"));
    benchmark::DoNotOptimize(rids);
  }
  state.counters["rows"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_IndexProbe)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SelectViaSeqScan(benchmark::State& state) {
  auto engine = MakeEngine(10000, /*with_index=*/false);
  Executor executor(engine.get());
  auto stmt = Parser::ParseStatement(
      "SELECT fno FROM Flights WHERE price < 200");
  if (!stmt.ok()) std::abort();
  for (auto _ : state) {
    auto result = executor.Execute(*stmt.value());
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SelectViaSeqScan)->Unit(benchmark::kMicrosecond);

void BM_SelectViaIndexScan(benchmark::State& state) {
  auto engine = MakeEngine(10000, /*with_index=*/true);
  Executor executor(engine.get());
  auto stmt = Parser::ParseStatement(
      "SELECT fno FROM Flights WHERE dest = 'City3'");
  if (!stmt.ok()) std::abort();
  for (auto _ : state) {
    auto result = executor.Execute(*stmt.value());
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SelectViaIndexScan)->Unit(benchmark::kMicrosecond);

void BM_TwoTableJoin(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<int>(state.range(0)),
                           /*with_index=*/false);
  Status s = engine->CreateTable(
      "Airlines", Schema({{"fno", DataType::kInt64, false},
                          {"airline", DataType::kString, false}}));
  if (!s.ok()) std::abort();
  for (int f = 0; f < state.range(0); ++f) {
    auto rid = engine->Insert("Airlines",
                              Tuple({Value::Int64(f),
                                     Value::String("United")}));
    if (!rid.ok()) std::abort();
  }
  Executor executor(engine.get());
  auto stmt = Parser::ParseStatement(
      "SELECT f.fno, a.airline FROM Flights f, Airlines a "
      "WHERE f.fno = a.fno AND f.price < 150");
  if (!stmt.ok()) std::abort();
  for (auto _ : state) {
    auto result = executor.Execute(*stmt.value());
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_TwoTableJoin)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace youtopia::bench
