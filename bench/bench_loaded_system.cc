// Experiments S3 + SCALE (DESIGN.md): coordination on a loaded system.
// The paper demonstrates "the scalability of our coordination algorithm
// by allowing our examples to be run on a loaded system, where a large
// number of entangled queries are trying to coordinate simultaneously"
// (§3). Here the load is a pool of N waiting queries whose partners have
// not arrived; we measure how the cost of coordinating a fresh pair
// grows with N — with and without the signature-partitioned pool
// (ablation of design decision #1).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace youtopia::bench {
namespace {

std::unique_ptr<Youtopia> MakeLoadedDb(int pool_size, bool signature_index) {
  YoutopiaConfig config;
  config.coordinator.match.use_signature_index = signature_index;
  auto db = std::make_unique<Youtopia>(config);
  Status s = db->ExecuteScript(
      "CREATE TABLE Flights (fno INT NOT NULL, dest TEXT NOT NULL);"
      "CREATE TABLE Reservation (traveler TEXT NOT NULL, fno INT NOT NULL);"
      "CREATE INDEX ON Flights (dest);"
      "CREATE INDEX ON Reservation (traveler);");
  if (!s.ok()) std::abort();
  for (int f = 0; f < 256; ++f) {
    auto rid = db->storage().Insert(
        "Flights", Tuple({Value::Int64(100 + f),
                          Value::String("City" + std::to_string(f % 4))}));
    if (!rid.ok()) std::abort();
  }
  // N lonely queries: partners never arrive, so they stay pending and
  // every future matching round must consider (and reject) them.
  // Registered as one batch — a single coordinator round instead of N,
  // which makes the 10k-pool setup tractable.
  std::vector<std::string> statements;
  std::vector<std::string> owners;
  statements.reserve(pool_size);
  owners.reserve(pool_size);
  for (int i = 0; i < pool_size; ++i) {
    const std::string self = "lonely" + std::to_string(i);
    owners.push_back(self);
    statements.push_back(PairSql(self, "ghost" + std::to_string(i)));
  }
  auto handles = db->SubmitBatch(statements, owners);
  if (!handles.ok()) std::abort();
  for (const auto& handle : *handles) {
    if (handle.Done()) std::abort();
  }
  return db;
}

void RunLoadedPair(benchmark::State& state, bool signature_index) {
  auto db = MakeLoadedDb(static_cast<int>(state.range(0)), signature_index);
  Client client(db.get(), OwnerOptions("bench"));
  int64_t pair = 0;
  for (auto _ : state) {
    const std::string a = "A" + std::to_string(pair);
    const std::string b = "B" + std::to_string(pair);
    ++pair;
    auto ha = client.SubmitAs(a, PairSql(a, b));
    auto hb = client.SubmitAs(b, PairSql(b, a));
    if (!ha.ok() || !hb.ok() || !hb->Done()) std::abort();
  }
  state.counters["pending_pool"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["matches_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_LoadedSystem_SignatureIndex(benchmark::State& state) {
  RunLoadedPair(state, /*signature_index=*/true);
}
BENCHMARK(BM_LoadedSystem_SignatureIndex)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(5000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// Ablation: every pending query is considered as a candidate provider
/// for every obligation.
void BM_LoadedSystem_NoSignatureIndex(benchmark::State& state) {
  RunLoadedPair(state, /*signature_index=*/false);
}
BENCHMARK(BM_LoadedSystem_NoSignatureIndex)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

/// Throughput with an all-matching load: 2N queries arrive interleaved
/// (all firsts, then all partners); reports end-to-end matches/sec.
void BM_LoadedSystem_DrainThroughput(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = MakeLoadedDb(/*pool_size=*/0, /*signature_index=*/true);
    state.ResumeTiming();
    for (int i = 0; i < pairs; ++i) {
      auto h = db->Submit(PairSql("A" + std::to_string(i),
                                  "B" + std::to_string(i)),
                          "A");
      if (!h.ok()) std::abort();
    }
    for (int i = 0; i < pairs; ++i) {
      auto h = db->Submit(PairSql("B" + std::to_string(i),
                                  "A" + std::to_string(i)),
                          "B");
      if (!h.ok() || !h->Done()) std::abort();
    }
    if (db->coordinator().pending_count() != 0) std::abort();
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * pairs * 2),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LoadedSystem_DrainThroughput)
    ->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace youtopia::bench
