// Experiments S3 + SCALE (DESIGN.md): coordination on a loaded system.
// The paper demonstrates "the scalability of our coordination algorithm
// by allowing our examples to be run on a loaded system, where a large
// number of entangled queries are trying to coordinate simultaneously"
// (§3). Here the load is a pool of N waiting queries whose partners have
// not arrived; we measure how the cost of coordinating a fresh pair
// grows with N — with and without the signature-partitioned pool
// (ablation of design decision #1).

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "bench_common.h"

namespace youtopia::bench {
namespace {

std::unique_ptr<Youtopia> MakeLoadedDb(int pool_size, bool signature_index,
                                       size_t workers = 0) {
  YoutopiaConfig config;
  config.coordinator.match.use_signature_index = signature_index;
  config.executor.num_workers = workers;
  auto db = std::make_unique<Youtopia>(config);
  Status s = db->ExecuteScript(
      "CREATE TABLE Flights (fno INT NOT NULL, dest TEXT NOT NULL);"
      "CREATE TABLE Reservation (traveler TEXT NOT NULL, fno INT NOT NULL);"
      "CREATE INDEX ON Flights (dest);"
      "CREATE INDEX ON Reservation (traveler);");
  if (!s.ok()) std::abort();
  for (int f = 0; f < 256; ++f) {
    auto rid = db->storage().Insert(
        "Flights", Tuple({Value::Int64(100 + f),
                          Value::String("City" + std::to_string(f % 4))}));
    if (!rid.ok()) std::abort();
  }
  // N lonely queries: partners never arrive, so they stay pending and
  // every future matching round must consider (and reject) them.
  // Registered as one batch — a single coordinator round instead of N,
  // which makes the 10k-pool setup tractable.
  std::vector<std::string> statements;
  std::vector<std::string> owners;
  statements.reserve(pool_size);
  owners.reserve(pool_size);
  for (int i = 0; i < pool_size; ++i) {
    const std::string self = "lonely" + std::to_string(i);
    owners.push_back(self);
    statements.push_back(PairSql(self, "ghost" + std::to_string(i)));
  }
  auto handles = db->SubmitBatch(statements, owners);
  if (!handles.ok()) std::abort();
  for (const auto& handle : *handles) {
    if (handle.Done()) std::abort();
  }
  return db;
}

void RunLoadedPair(benchmark::State& state, bool signature_index) {
  auto db = MakeLoadedDb(static_cast<int>(state.range(0)), signature_index);
  Client client(db.get(), OwnerOptions("bench"));
  int64_t pair = 0;
  for (auto _ : state) {
    const std::string a = "A" + std::to_string(pair);
    const std::string b = "B" + std::to_string(pair);
    ++pair;
    auto ha = client.SubmitAs(a, PairSql(a, b));
    auto hb = client.SubmitAs(b, PairSql(b, a));
    if (!ha.ok() || !hb.ok() || !hb->Done()) std::abort();
  }
  state.counters["pending_pool"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["matches_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_LoadedSystem_SignatureIndex(benchmark::State& state) {
  RunLoadedPair(state, /*signature_index=*/true);
}
BENCHMARK(BM_LoadedSystem_SignatureIndex)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(5000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// Ablation: every pending query is considered as a candidate provider
/// for every obligation.
void BM_LoadedSystem_NoSignatureIndex(benchmark::State& state) {
  RunLoadedPair(state, /*signature_index=*/false);
}
BENCHMARK(BM_LoadedSystem_NoSignatureIndex)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

/// Throughput with an all-matching load: 2N queries arrive interleaved
/// (all firsts, then all partners); reports end-to-end matches/sec.
void BM_LoadedSystem_DrainThroughput(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = MakeLoadedDb(/*pool_size=*/0, /*signature_index=*/true);
    state.ResumeTiming();
    for (int i = 0; i < pairs; ++i) {
      auto h = db->Submit(PairSql("A" + std::to_string(i),
                                  "B" + std::to_string(i)),
                          "A");
      if (!h.ok()) std::abort();
    }
    for (int i = 0; i < pairs; ++i) {
      auto h = db->Submit(PairSql("B" + std::to_string(i),
                                  "A" + std::to_string(i)),
                          "B");
      if (!h.ok() || !h->Done()) std::abort();
    }
    if (db->coordinator().pending_count() != 0) std::abort();
  }
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * pairs * 2),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LoadedSystem_DrainThroughput)
    ->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Async drain: the same all-matching pairwise load, driven through the
/// executor service — ONE submitter thread packages every statement as
/// a StatementTask (a fresh session per task, so nothing serializes on
/// FIFO order) and `workers` pool threads drive the statement path.
/// Args: (pairs, workers).
void BM_LoadedSystem_AsyncDrain(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  const size_t workers = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = MakeLoadedDb(/*pool_size=*/0, /*signature_index=*/true, workers);
    ExecutorService& exec = db->executor_service();
    state.ResumeTiming();
    for (int i = 0; i < 2 * pairs; ++i) {
      const int pair = i / 2;
      const bool first = (i % 2) == 0;
      const std::string self =
          (first ? "A" : "B") + std::to_string(pair);
      const std::string other =
          (first ? "B" : "A") + std::to_string(pair);
      StatementTask task;
      task.sql = PairSql(self, other);
      task.owner = self;
      task.session = ExecutorService::AllocateSessionId();
      if (!exec.Submit(std::move(task)).ok()) std::abort();
    }
    if (!exec.Drain(std::chrono::milliseconds(60000)).ok()) std::abort();
    if (db->coordinator().pending_count() != 0) std::abort();
  }
  state.counters["workers"] = benchmark::Counter(static_cast<double>(workers));
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * pairs * 2),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LoadedSystem_AsyncDrain)
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({1024, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Sharded drain: 4 submitter threads interleave firsts-then-partners
/// on their own answer relations against a loaded pool of lonely
/// queries spread over the same relations. Compares the single-mutex
/// coordinator (shards=1) with a sharded one (shards=8) under
/// identical load. Args: (lonely pool size, num_shards).
void BM_LoadedSystem_ShardedDrain(benchmark::State& state) {
  constexpr int kThreads = 4;
  constexpr int kPairsPerThread = 16;
  const int pool_size = static_cast<int>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  std::vector<std::string> relations;
  auto db = MakeShardedFlightDb(kThreads, shards, &relations);
  // Lonely background load, round-robin across the relations, in one
  // batch round per relation.
  for (int t = 0; t < kThreads; ++t) {
    const std::string& relation = relations[t];
    std::vector<std::string> statements;
    std::vector<std::string> owners;
    for (int i = t; i < pool_size; i += kThreads) {
      const std::string self = "lonely" + std::to_string(i);
      owners.push_back(self);
      statements.push_back(
          PairSqlOn(relation, self, "ghost" + std::to_string(i)));
    }
    auto handles = db->SubmitBatch(statements, owners);
    if (!handles.ok()) std::abort();
  }
  int64_t round = 0;
  for (auto _ : state) {
    const int64_t base = round++ * kPairsPerThread;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&db, &relations, t, base] {
        const std::string& relation = relations[t];
        Client client(db.get(), OwnerOptions("drain" + std::to_string(t)));
        for (int p = 0; p < kPairsPerThread; ++p) {
          const std::string a =
              "A" + std::to_string(t) + "_" + std::to_string(base + p);
          const std::string b =
              "B" + std::to_string(t) + "_" + std::to_string(base + p);
          auto ha = client.SubmitAs(a, PairSqlOn(relation, a, b));
          auto hb = client.SubmitAs(b, PairSqlOn(relation, b, a));
          if (!ha.ok() || !hb.ok() || !hb->Done()) std::abort();
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  state.counters["pending_pool"] =
      benchmark::Counter(static_cast<double>(pool_size));
  state.counters["shards"] = benchmark::Counter(static_cast<double>(shards));
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kThreads * kPairsPerThread),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LoadedSystem_ShardedDrain)
    ->Args({1000, 1})->Args({1000, 8})->Args({5000, 1})->Args({5000, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace youtopia::bench
