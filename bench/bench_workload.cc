// Experiment SCALE, end-to-end view: the loaded-system workload driver
// (mixed pairwise/group/hotel coordination from concurrent sessions)
// swept over session counts. Complements bench_loaded_system, which
// isolates matcher cost — this one includes the full middle-tier path
// and reports coordination throughput.

#include <benchmark/benchmark.h>

#include "travel/data_generator.h"
#include "travel/travel_schema.h"
#include "travel/workload.h"

namespace youtopia::bench {
namespace {

void BM_LoadedWorkload(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  size_t satisfied = 0;
  uint64_t p95 = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Youtopia db;
    if (!travel::CreateTravelSchema(&db).ok()) std::abort();
    travel::DataGeneratorConfig data;
    data.cities = {"NewYork", "Paris", "Rome"};
    data.flights_per_route_per_day = 4;
    data.days = 3;
    if (!travel::GenerateTravelData(&db, data).ok()) std::abort();
    travel::WorkloadConfig config;
    config.sessions = sessions;
    config.requests_per_session = 25;
    config.group_fraction = 0.2;
    config.hotel_fraction = 0.3;
    state.ResumeTiming();

    auto report = travel::RunLoadedWorkload(&db, "Paris", config);
    if (!report.ok() || report->timed_out > 0 || report->errors > 0) {
      std::abort();
    }
    satisfied += report->satisfied;
    p95 = report->latency.Percentile(95);
  }
  state.counters["sessions"] =
      benchmark::Counter(static_cast<double>(sessions));
  state.counters["satisfied_per_sec"] = benchmark::Counter(
      static_cast<double>(satisfied), benchmark::Counter::kIsRate);
  state.counters["p95_latency_us"] =
      benchmark::Counter(static_cast<double>(p95));
}
BENCHMARK(BM_LoadedWorkload)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace youtopia::bench
