// Experiment BASE (DESIGN.md): in-DBMS coordination (Youtopia entangled
// queries) versus the middle-tier polling baseline the paper argues
// developers are otherwise forced to write (§1). Measures end-to-end
// wall time for P pairs coordinating concurrently from 2P session
// threads. Expected shape: Youtopia wins on latency (no polling delay)
// and the gap widens with the polling interval.

#include <benchmark/benchmark.h>

#include <thread>

#include "baseline/middle_tier_coordinator.h"
#include "bench_common.h"

namespace youtopia::bench {
namespace {

using std::chrono::milliseconds;

void BM_YoutopiaPairs(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = MakeFlightDb(/*num_flights=*/128, /*num_dests=*/4);
    state.ResumeTiming();
    std::vector<std::thread> threads;
    threads.reserve(pairs * 2);
    for (int p = 0; p < pairs; ++p) {
      const std::string a = "A" + std::to_string(p);
      const std::string b = "B" + std::to_string(p);
      // One Client per session thread — the deployment shape of the
      // façade (each connection holds its own).
      threads.emplace_back([&db, a, b] {
        Client client(db.get(), OwnerOptions(a));
        auto h = client.Submit(PairSql(a, b));
        if (!h.ok() || !h->Wait(milliseconds(30000)).ok()) std::abort();
      });
      threads.emplace_back([&db, a, b] {
        Client client(db.get(), OwnerOptions(b));
        auto h = client.Submit(PairSql(b, a));
        if (!h.ok() || !h->Wait(milliseconds(30000)).ok()) std::abort();
      });
    }
    for (auto& t : threads) t.join();
  }
  state.counters["pairs"] = benchmark::Counter(static_cast<double>(pairs));
  state.counters["bookings_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * pairs * 2),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_YoutopiaPairs)->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MiddleTierPollingPairs(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  const auto poll_interval = milliseconds(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = MakeFlightDb(/*num_flights=*/128, /*num_dests=*/4);
    baseline::MiddleTierCoordinator coordinator(db.get());
    if (!coordinator.Setup().ok()) std::abort();
    state.ResumeTiming();
    std::vector<std::thread> threads;
    threads.reserve(pairs * 2);
    for (int p = 0; p < pairs; ++p) {
      const std::string a = "A" + std::to_string(p);
      const std::string b = "B" + std::to_string(p);
      auto session = [&coordinator, poll_interval](const std::string& self,
                                                   const std::string& peer) {
        auto ticket = coordinator.RequestSameFlight(self, peer, "City0");
        if (!ticket.ok()) std::abort();
        if (ticket->completed) return;
        auto fno = coordinator.WaitForMatch(ticket->pid, milliseconds(30000),
                                            poll_interval);
        if (!fno.ok()) std::abort();
      };
      threads.emplace_back(session, a, b);
      threads.emplace_back(session, b, a);
    }
    for (auto& t : threads) t.join();
  }
  state.counters["pairs"] = benchmark::Counter(static_cast<double>(pairs));
  state.counters["poll_ms"] =
      benchmark::Counter(static_cast<double>(state.range(1)));
  state.counters["bookings_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * pairs * 2),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MiddleTierPollingPairs)
    ->Args({2, 1})->Args({8, 1})->Args({32, 1})
    ->Args({8, 10})->Args({8, 50})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace youtopia::bench
