// Experiments S4/S5 (DESIGN.md): group flight (and hotel) booking —
// matching cost versus group size. Joint satisfiability is NP-hard in
// general (companion paper [2]); this bench shows where the cost curve
// bends for all-to-all groups, and the unify-before-ground ablation
// (design decision #2 is implicit: grounding runs once per closed
// group, so symbolic closure dominates as groups grow).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace youtopia::bench {
namespace {

std::string GroupMemberSql(const std::vector<std::string>& group,
                           size_t self_index, bool with_hotel) {
  const std::string& self = group[self_index];
  std::string heads = "'" + self + "', fno INTO ANSWER Reservation";
  std::string where =
      "fno IN (SELECT fno FROM Flights WHERE dest='City0')";
  if (with_hotel) {
    heads += ", '" + self + "', hid INTO ANSWER HotelReservation";
    where += " AND hid IN (SELECT hid FROM Hotels WHERE city='City0')";
  }
  for (size_t i = 0; i < group.size(); ++i) {
    if (i == self_index) continue;
    where += " AND ('" + group[i] + "', fno) IN ANSWER Reservation";
    if (with_hotel) {
      where += " AND ('" + group[i] + "', hid) IN ANSWER HotelReservation";
    }
  }
  return "SELECT " + heads + " WHERE " + where + " CHOOSE 1";
}

std::unique_ptr<Youtopia> MakeGroupDb(bool prefer_most_constrained = true) {
  YoutopiaConfig config;
  config.coordinator.match.prefer_most_constrained = prefer_most_constrained;
  auto db = std::make_unique<Youtopia>(config);
  Status setup = db->ExecuteScript(
      "CREATE TABLE Flights (fno INT NOT NULL, dest TEXT NOT NULL);"
      "CREATE TABLE Reservation (traveler TEXT NOT NULL, fno INT NOT NULL);"
      "CREATE INDEX ON Flights (dest);"
      "CREATE INDEX ON Reservation (traveler);");
  if (!setup.ok()) std::abort();
  for (int f = 0; f < 64; ++f) {
    auto rid = db->storage().Insert(
        "Flights", Tuple({Value::Int64(100 + f),
                          Value::String("City" + std::to_string(f % 4))}));
    if (!rid.ok()) std::abort();
  }
  Status s = db->ExecuteScript(
      "CREATE TABLE Hotels (hid INT NOT NULL, city TEXT NOT NULL);"
      "CREATE TABLE HotelReservation (traveler TEXT NOT NULL, hid INT NOT "
      "NULL);"
      "CREATE INDEX ON Hotels (city);");
  if (!s.ok()) std::abort();
  for (int h = 0; h < 16; ++h) {
    auto rid = db->storage().Insert(
        "Hotels", Tuple({Value::Int64(500 + h),
                         Value::String("City" + std::to_string(h % 4))}));
    if (!rid.ok()) std::abort();
  }
  return db;
}

std::vector<std::string> MakeGroup(int64_t round, int group_size) {
  std::vector<std::string> group;
  group.reserve(group_size);
  for (int i = 0; i < group_size; ++i) {
    group.push_back("g" + std::to_string(round) + "_" + std::to_string(i));
  }
  return group;
}

void RunGroup(benchmark::State& state, bool with_hotel,
              bool prefer_most_constrained = true) {
  const int group_size = static_cast<int>(state.range(0));
  auto db = MakeGroupDb(prefer_most_constrained);
  Client client(db.get(), OwnerOptions("bench"));
  int64_t round = 0;
  for (auto _ : state) {
    auto group = MakeGroup(round++, group_size);
    for (size_t i = 0; i < group.size(); ++i) {
      auto handle = client.SubmitAs(group[i],
                                    GroupMemberSql(group, i, with_hotel));
      if (!handle.ok()) std::abort();
      const bool last = i + 1 == group.size();
      if (last != handle->Done()) std::abort();
    }
  }
  state.counters["group_size"] =
      benchmark::Counter(static_cast<double>(group_size));
  state.counters["groups_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

/// Batched submission of the same group workload: the friends submit
/// together, so the whole group goes through Client::SubmitBatch and
/// one coordinator round — versus RunGroup's N submissions, each taking
/// the coordinator lock and running a (mostly failing) matching round.
void RunGroupBatched(benchmark::State& state, bool with_hotel) {
  const int group_size = static_cast<int>(state.range(0));
  auto db = MakeGroupDb();
  Client client(db.get(), OwnerOptions("bench"));
  int64_t round = 0;
  for (auto _ : state) {
    auto group = MakeGroup(round++, group_size);
    std::vector<std::string> statements;
    statements.reserve(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      statements.push_back(GroupMemberSql(group, i, with_hotel));
    }
    auto handles = client.SubmitBatchAs(group, statements);
    if (!handles.ok()) std::abort();
    for (const auto& handle : *handles) {
      if (!handle.Done()) std::abort();
    }
  }
  state.counters["group_size"] =
      benchmark::Counter(static_cast<double>(group_size));
  state.counters["groups_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_GroupFlightBooking(benchmark::State& state) {
  RunGroup(state, /*with_hotel=*/false);
}
BENCHMARK(BM_GroupFlightBooking)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_GroupFlightBookingBatched(benchmark::State& state) {
  RunGroupBatched(state, /*with_hotel=*/false);
}
BENCHMARK(BM_GroupFlightBookingBatched)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_GroupFlightAndHotelBooking(benchmark::State& state) {
  RunGroup(state, /*with_hotel=*/true);
}
BENCHMARK(BM_GroupFlightAndHotelBooking)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_GroupFlightAndHotelBookingBatched(benchmark::State& state) {
  RunGroupBatched(state, /*with_hotel=*/true);
}
BENCHMARK(BM_GroupFlightAndHotelBookingBatched)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

/// Ablation of the fail-first grounding heuristic (design decision #2):
/// the naive order grounds the first evaluable class instead of the
/// most constrained one.
void BM_GroupFlightBooking_NaiveGroundingOrder(benchmark::State& state) {
  RunGroup(state, /*with_hotel=*/false, /*prefer_most_constrained=*/false);
}
BENCHMARK(BM_GroupFlightBooking_NaiveGroundingOrder)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace youtopia::bench
