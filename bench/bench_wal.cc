// Experiment WAL (DESIGN.md decision #8): what group commit buys over
// the classic one-fsync-per-commit write-ahead log, and what durability
// costs at all relative to the in-memory seed.
//
// Setup: N concurrent sessions, each inserting into its OWN table so
// 2PL never serializes them — the commits genuinely overlap, which is
// the case group commit exists for (concurrently-committing workers
// share one fsync). Three modes, each at 1 and N sessions:
//   off        wal.enabled = false (the seed; the durability overhead
//              baseline)
//   percommit  wal.enabled, group_commit = false: every append writes
//              and fsyncs inline — one fsync per commit
//   group      wal.enabled, group_commit = true: appends buffer, the
//              sync leader flushes everyone's records with one fsync
//
// Also measures the raw fsync latency of the bench directory's
// filesystem, since the whole experiment is about amortizing exactly
// that cost.
//
// Standalone driver (no google-benchmark) so it can emit its own
// machine-readable summary: BENCH_wal.json (path overridable via
// argv[1]) — what CI's regression gate and artifact trail consume. The
// acceptance criterion pins group commit >= 3x the per-commit-fsync
// throughput at 8 concurrent sessions; exits non-zero below the bar.
//
// Usage: bench_wal [output.json] [commits_per_session] [sessions]

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/youtopia.h"

namespace {

using namespace youtopia;  // NOLINT(build/namespaces) — bench driver

const char* kBenchDir = "bench_wal_data";

enum class Mode { kOff, kPerCommitFsync, kGroupCommit };

/// Raw fsync latency on the bench directory's filesystem — the cost
/// group commit amortizes.
double MeasureFsyncMicros(int iters) {
  std::filesystem::create_directories(kBenchDir);
  const std::string path = std::string(kBenchDir) + "/fsync_probe";
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) std::abort();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    if (::write(fd, "x", 1) != 1) std::abort();
    if (::fsync(fd) != 0) std::abort();
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  ::close(fd);
  std::filesystem::remove(path);
  return static_cast<double>(micros) / static_cast<double>(iters);
}

/// `sessions` threads, each committing `commits` single-row INSERTs
/// into its own table. Returns commits per second over the whole run.
double CommitsPerSecond(Mode mode, int sessions, int commits) {
  const std::string dir = std::string(kBenchDir) + "/run";
  std::filesystem::remove_all(dir);

  YoutopiaConfig config;
  if (mode != Mode::kOff) {
    config.wal.enabled = true;
    config.wal.dir = dir;
    config.wal.group_commit = mode == Mode::kGroupCommit;
    config.wal.checkpoint_on_shutdown = false;  // measure appends only
  }
  auto db = std::make_unique<Youtopia>(config);
  std::string schema_script;
  for (int s = 0; s < sessions; ++s) {
    schema_script += "CREATE TABLE t" + std::to_string(s) +
                     " (id INT NOT NULL, note TEXT NOT NULL);";
  }
  if (!db->ExecuteScript(schema_script).ok()) std::abort();

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&db, s, commits] {
      const std::string table = "t" + std::to_string(s);
      for (int i = 0; i < commits; ++i) {
        auto result = db->Execute("INSERT INTO " + table + " VALUES (" +
                                  std::to_string(i) + ", 'payload')");
        if (!result.ok()) std::abort();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  db.reset();
  std::filesystem::remove_all(dir);
  const double total =
      static_cast<double>(sessions) * static_cast<double>(commits);
  return micros > 0 ? total * 1e6 / static_cast<double>(micros) : 0.0;
}

/// Best of `trials` runs: fsync-bound measurements are noisy (the
/// flusher races the page cache and whatever else the machine is
/// doing), and peak throughput is what the mode is capable of.
double BestCommitsPerSecond(Mode mode, int sessions, int commits,
                            int trials) {
  double best = 0.0;
  for (int t = 0; t < trials; ++t) {
    best = std::max(best, CommitsPerSecond(mode, sessions, commits));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_wal.json";
  const int commits = argc > 2 ? std::atoi(argv[2]) : 250;
  const int sessions = argc > 3 ? std::atoi(argv[3]) : 8;
  const int trials = 3;

  const double fsync_us = MeasureFsyncMicros(200);
  std::printf("raw fsync: %.1f us\n", fsync_us);

  const double off_1 = BestCommitsPerSecond(Mode::kOff, 1, commits, trials);
  const double off_n =
      BestCommitsPerSecond(Mode::kOff, sessions, commits, trials);
  const double percommit_1 =
      BestCommitsPerSecond(Mode::kPerCommitFsync, 1, commits, trials);
  const double percommit_n =
      BestCommitsPerSecond(Mode::kPerCommitFsync, sessions, commits, trials);
  const double group_1 =
      BestCommitsPerSecond(Mode::kGroupCommit, 1, commits, trials);
  const double group_n =
      BestCommitsPerSecond(Mode::kGroupCommit, sessions, commits, trials);
  std::filesystem::remove_all(kBenchDir);

  std::printf("commits/s (1 session):  off %.0f, fsync-per-commit %.0f, "
              "group-commit %.0f\n",
              off_1, percommit_1, group_1);
  std::printf("commits/s (%d sessions): off %.0f, fsync-per-commit %.0f, "
              "group-commit %.0f\n",
              sessions, off_n, percommit_n, group_n);

  const double speedup_n = percommit_n > 0.0 ? group_n / percommit_n : 0.0;
  std::printf("group-commit speedup at %d sessions: %.2fx\n", sessions,
              speedup_n);

  const bool ok = speedup_n >= 3.0;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: group-commit speedup %.2fx below the 3x bar\n",
                 speedup_n);
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"wal\",\n"
               "  \"commits_per_session\": %d,\n"
               "  \"sessions\": %d,\n"
               "  \"fsync_us\": %.2f,\n"
               "  \"off_1s_commits_per_sec\": %.1f,\n"
               "  \"off_8s_commits_per_sec\": %.1f,\n"
               "  \"percommit_1s_commits_per_sec\": %.1f,\n"
               "  \"percommit_8s_commits_per_sec\": %.1f,\n"
               "  \"group_1s_commits_per_sec\": %.1f,\n"
               "  \"group_8s_commits_per_sec\": %.1f,\n"
               "  \"group_commit_speedup_8s\": %.3f\n}\n",
               commits, sessions, fsync_us, off_1, off_n, percommit_1,
               percommit_n, group_1, group_n, speedup_n);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
