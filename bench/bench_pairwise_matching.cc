// Experiment S1 (DESIGN.md): "Book a flight with a friend" — pairwise
// coordination cost as a function of database size. Regenerates the
// latency series reported in EXPERIMENTS.md §S1.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace youtopia::bench {
namespace {

/// Full pairwise round: submit the waiting half, then the partner whose
/// arrival triggers match + grounding + atomic install. Flights swept.
void BM_PairwiseCoordination(benchmark::State& state) {
  auto db = MakeFlightDb(static_cast<int>(state.range(0)), /*num_dests=*/4);
  Client client(db.get(), OwnerOptions("bench"));
  int64_t pair = 0;
  for (auto _ : state) {
    const std::string a = "A" + std::to_string(pair);
    const std::string b = "B" + std::to_string(pair);
    ++pair;
    auto ha = client.SubmitAs(a, PairSql(a, b));
    auto hb = client.SubmitAs(b, PairSql(b, a));
    if (!ha.ok() || !hb.ok() || !hb->Done()) std::abort();
    benchmark::DoNotOptimize(hb->Answers());
  }
  state.counters["flights"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PairwiseCoordination)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Arg(4096)->Unit(benchmark::kMicrosecond);

/// The waiting half alone: registration cost of a query that cannot be
/// answered yet (it probes the pool and stored answers, then parks).
void BM_RegistrationOnly(benchmark::State& state) {
  auto db = MakeFlightDb(static_cast<int>(state.range(0)), /*num_dests=*/4);
  Client client(db.get(), OwnerOptions("bench"));
  int64_t n = 0;
  for (auto _ : state) {
    const std::string a = "A" + std::to_string(n);
    const std::string b = "B" + std::to_string(n);
    ++n;
    auto handle = client.SubmitAs(a, PairSql(a, b));
    if (!handle.ok() || handle->Done()) std::abort();
  }
  state.counters["flights"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_RegistrationOnly)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

/// Browse-then-book path (S1 alternate): the partner constraint is
/// satisfied by an already-stored answer rather than a pending query.
void BM_BookAgainstStoredAnswer(benchmark::State& state) {
  auto db = MakeFlightDb(1024, /*num_dests=*/4);
  Client client(db.get(), OwnerOptions("bench"));
  int64_t n = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string a = "A" + std::to_string(n);
    const std::string b = "B" + std::to_string(n);
    ++n;
    // b books directly; a's constraint will hit the stored tuple.
    auto direct = client.SubmitAs(
        b, "SELECT '" + b + "', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest='City0') CHOOSE 1");
    if (!direct.ok() || !direct->Done()) std::abort();
    state.ResumeTiming();
    auto handle = client.SubmitAs(a, PairSql(a, b));
    if (!handle.ok() || !handle->Done()) std::abort();
  }
}
BENCHMARK(BM_BookAgainstStoredAnswer)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace youtopia::bench
