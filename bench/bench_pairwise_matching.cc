// Experiment S1 (DESIGN.md): "Book a flight with a friend" — pairwise
// coordination cost as a function of database size. Regenerates the
// latency series reported in EXPERIMENTS.md §S1.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "bench_common.h"

namespace youtopia::bench {
namespace {

/// Full pairwise round: submit the waiting half, then the partner whose
/// arrival triggers match + grounding + atomic install. Flights swept.
void BM_PairwiseCoordination(benchmark::State& state) {
  auto db = MakeFlightDb(static_cast<int>(state.range(0)), /*num_dests=*/4);
  Client client(db.get(), OwnerOptions("bench"));
  int64_t pair = 0;
  for (auto _ : state) {
    const std::string a = "A" + std::to_string(pair);
    const std::string b = "B" + std::to_string(pair);
    ++pair;
    auto ha = client.SubmitAs(a, PairSql(a, b));
    auto hb = client.SubmitAs(b, PairSql(b, a));
    if (!ha.ok() || !hb.ok() || !hb->Done()) std::abort();
    benchmark::DoNotOptimize(hb->Answers());
  }
  state.counters["flights"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PairwiseCoordination)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Arg(4096)->Unit(benchmark::kMicrosecond);

/// The waiting half alone: registration cost of a query that cannot be
/// answered yet (it probes the pool and stored answers, then parks).
void BM_RegistrationOnly(benchmark::State& state) {
  auto db = MakeFlightDb(static_cast<int>(state.range(0)), /*num_dests=*/4);
  Client client(db.get(), OwnerOptions("bench"));
  int64_t n = 0;
  for (auto _ : state) {
    const std::string a = "A" + std::to_string(n);
    const std::string b = "B" + std::to_string(n);
    ++n;
    auto handle = client.SubmitAs(a, PairSql(a, b));
    if (!handle.ok() || handle->Done()) std::abort();
  }
  state.counters["flights"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_RegistrationOnly)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

/// Browse-then-book path (S1 alternate): the partner constraint is
/// satisfied by an already-stored answer rather than a pending query.
void BM_BookAgainstStoredAnswer(benchmark::State& state) {
  auto db = MakeFlightDb(1024, /*num_dests=*/4);
  Client client(db.get(), OwnerOptions("bench"));
  int64_t n = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string a = "A" + std::to_string(n);
    const std::string b = "B" + std::to_string(n);
    ++n;
    // b books directly; a's constraint will hit the stored tuple.
    auto direct = client.SubmitAs(
        b, "SELECT '" + b + "', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest='City0') CHOOSE 1");
    if (!direct.ok() || !direct->Done()) std::abort();
    state.ResumeTiming();
    auto handle = client.SubmitAs(a, PairSql(a, b));
    if (!handle.ok() || !handle->Done()) std::abort();
  }
}
BENCHMARK(BM_BookAgainstStoredAnswer)->Unit(benchmark::kMicrosecond);

/// Sharded-coordinator variant: `threads` worker threads each run
/// pairwise coordinations on their own answer relation, so the
/// coordinations are independent. With num_shards=1 every matching
/// round serializes under the single shard mutex (the seed's
/// behavior); with enough shards the threads' rounds hold disjoint
/// mutexes and match in parallel. Args: (threads, num_shards).
void BM_ShardedParallelPairwise(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  constexpr int kPairsPerThread = 16;
  std::vector<std::string> relations;
  auto db = MakeShardedFlightDb(threads, shards, &relations);
  int64_t round = 0;
  for (auto _ : state) {
    const int64_t base = round++ * kPairsPerThread;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&db, &relations, t, base] {
        const std::string& relation = relations[t];
        Client client(db.get(), OwnerOptions("bench" + std::to_string(t)));
        for (int p = 0; p < kPairsPerThread; ++p) {
          const std::string a =
              "A" + std::to_string(t) + "_" + std::to_string(base + p);
          const std::string b =
              "B" + std::to_string(t) + "_" + std::to_string(base + p);
          auto ha = client.SubmitAs(a, PairSqlOn(relation, a, b));
          auto hb = client.SubmitAs(b, PairSqlOn(relation, b, a));
          if (!ha.ok() || !hb.ok() || !hb->Done()) std::abort();
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  state.counters["threads"] = benchmark::Counter(static_cast<double>(threads));
  state.counters["shards"] = benchmark::Counter(static_cast<double>(shards));
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * threads * kPairsPerThread),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedParallelPairwise)
    ->Args({4, 1})->Args({4, 8})->Args({8, 1})->Args({8, 16})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace youtopia::bench
