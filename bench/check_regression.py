#!/usr/bin/env python3
"""CI perf-trajectory gate: compare freshly produced BENCH_*.json files
against the committed seed baselines in bench/baselines/.

Usage: check_regression.py [--baselines DIR] BENCH_FILE...

Driven by bench/baselines/manifest.json, which lists per bench file the
metrics that gate the job:

    {
      "BENCH_plan_cache.json": [
        {"path": "warm_prepare_speedup", "direction": "higher",
         "threshold": 0.30, "min": 5.0},
        ...
      ],
      ...
    }

  path       dotted lookup into the JSON, with [i] array indexing
             (e.g. "results[0].tasks_per_sec", "execute.req_per_sec")
  direction  which way is better: "higher" or "lower"
  threshold  fractional regression that fails the job (default 0.30 —
             generous, CI boxes are noisy 1-core containers). Only
             *regressions* fail; a metric better than baseline always
             passes, so faster CI hardware cannot trip the gate.
  min        optional hard floor (direction "higher") or ceiling
             ("lower") that fails regardless of the baseline — used for
             acceptance criteria like "warm prepare >= 5x cold".

Exit status: 0 all gated metrics pass, 1 any regression / floor breach /
missing baseline or metric.
"""

import argparse
import json
import os
import re
import sys

DEFAULT_THRESHOLD = 0.30


def lookup(doc, path):
    """Resolves "a.b[2].c" into doc; raises KeyError if absent."""
    node = doc
    for part in path.split("."):
        m = re.fullmatch(r"([^\[\]]+)((\[\d+\])*)", part)
        if m is None:
            raise KeyError(path)
        key, indexes = m.group(1), m.group(2)
        if not isinstance(node, dict) or key not in node:
            raise KeyError(path)
        node = node[key]
        for idx in re.findall(r"\[(\d+)\]", indexes):
            if not isinstance(node, list) or int(idx) >= len(node):
                raise KeyError(path)
            node = node[int(idx)]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise KeyError(f"{path} is not numeric")
    return float(node)


def check_file(current_path, baseline_dir, metrics):
    name = os.path.basename(current_path)
    failures = []
    rows = []
    with open(current_path) as f:
        current = json.load(f)
    baseline_path = os.path.join(baseline_dir, name)
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError:
        return [f"{name}: no committed baseline at {baseline_path}"], rows

    for metric in metrics:
        path = metric["path"]
        higher = metric.get("direction", "higher") == "higher"
        threshold = float(metric.get("threshold", DEFAULT_THRESHOLD))
        try:
            cur = lookup(current, path)
        except KeyError as e:
            failures.append(f"{name}: current run lacks metric {e}")
            continue
        try:
            base = lookup(baseline, path)
        except KeyError as e:
            failures.append(f"{name}: baseline lacks metric {e}")
            continue

        if base != 0:
            change = (cur - base) / abs(base)
        else:
            change = 0.0
        regressed = (-change if higher else change) > threshold
        floor = metric.get("min")
        floor_breach = floor is not None and (
            cur < float(floor) if higher else cur > float(floor)
        )
        verdict = "FAIL" if (regressed or floor_breach) else "ok"
        rows.append(
            f"  [{verdict:4}] {name}:{path} = {cur:.3f} "
            f"(baseline {base:.3f}, {change:+.1%}, "
            f"{'higher' if higher else 'lower'} is better)"
        )
        if regressed:
            failures.append(
                f"{name}: {path} regressed {-change if higher else change:.1%}"
                f" vs baseline ({cur:.3f} vs {base:.3f},"
                f" threshold {threshold:.0%})"
            )
        if floor_breach:
            failures.append(
                f"{name}: {path} = {cur:.3f} breaches hard"
                f" {'floor' if higher else 'ceiling'} {float(floor):.3f}"
            )
    return failures, rows


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "baselines"),
    )
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()

    with open(os.path.join(args.baselines, "manifest.json")) as f:
        manifest = json.load(f)

    all_failures = []
    for current_path in args.files:
        name = os.path.basename(current_path)
        metrics = manifest.get(name)
        if metrics is None:
            print(f"  [skip] {name}: not gated by the manifest")
            continue
        failures, rows = check_file(current_path, args.baselines, metrics)
        for row in rows:
            print(row)
        all_failures.extend(failures)

    if all_failures:
        print("\nregression gate FAILED:")
        for failure in all_failures:
            print(f"  - {failure}")
        return 1
    print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
