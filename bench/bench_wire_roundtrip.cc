// Experiment WIRE (DESIGN.md decision #6): cost of putting the engine
// behind the wire protocol. Three measurements:
//
//   1. codec   — pure encode+decode throughput of representative frames
//                (no sockets), the ceiling of the protocol layer;
//   2. execute — loopback RPC round-trip (RemoteClient::Execute of a
//                small SELECT against a YoutopiaServer), latency
//                percentiles + requests/s on one connection;
//   3. submit  — entangled submit + server-pushed completion round
//                trip: pairs of symmetric queries from two connections,
//                measuring submission-to-push latency of the first
//                member of each pair.
//
// Standalone driver (no google-benchmark) emitting BENCH_wire.json
// (path overridable via argv[1]).
//
// Usage: bench_wire_roundtrip [output.json] [iterations]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/histogram.h"
#include "net/protocol.h"
#include "net/remote_client.h"
#include "net/server.h"
#include "travel/travel_schema.h"

namespace {

using namespace youtopia;  // NOLINT(build/namespaces) — bench driver

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Codec throughput over a realistic ExecuteResponse (8 rows x 4 cols).
double CodecFramesPerSec(int iterations) {
  net::ExecuteResponse resp;
  resp.request_id = 7;
  resp.status = Status::OK();
  resp.result.column_names = {"fno", "origin", "price", "note"};
  for (int i = 0; i < 8; ++i) {
    resp.result.rows.push_back(Tuple{
        Value::Int64(1000 + i), Value::String("NewYork"),
        Value::Double(399.99 + i * 0.125), Value::String("row note")});
  }
  const auto start = std::chrono::steady_clock::now();
  size_t bytes = 0;
  for (int i = 0; i < iterations; ++i) {
    resp.request_id = static_cast<uint64_t>(i);
    const std::string frame = net::EncodeFrame(resp);
    bytes += frame.size();
    net::FrameAssembler assembler;
    assembler.Append(frame);
    auto next = assembler.Next();
    if (!next.ok() || !next->has_value()) std::abort();
    auto decoded = net::DecodePayload<net::ExecuteResponse>((*next)->payload);
    if (!decoded.ok() ||
        decoded->request_id != static_cast<uint64_t>(i)) {
      std::abort();
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("codec: %d frames (%zu bytes) in %.3fs = %.0f frames/s\n",
              iterations, bytes, secs, iterations / secs);
  return iterations / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_wire.json";
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 2000;

  const double codec_fps = CodecFramesPerSec(iterations * 10);

  Youtopia db;
  if (!travel::SetupFigure1(&db).ok()) return 1;
  net::YoutopiaServer server(&db);
  if (!server.Start().ok()) return 1;
  auto client = net::RemoteClient::Connect("127.0.0.1", server.port());
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }

  // Execute round trips.
  Histogram execute_latency;
  const auto exec_start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    const uint64_t t0 = NowMicros();
    auto result = (*client)->Execute("SELECT fno FROM Flights WHERE "
                                     "dest='Paris'");
    if (!result.ok()) {
      std::fprintf(stderr, "execute: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    execute_latency.Record(NowMicros() - t0);
  }
  const double exec_secs = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - exec_start)
                               .count();
  const double exec_rps = iterations / exec_secs;
  std::printf("execute: %d round trips = %.0f req/s, latency{%s}\n",
              iterations, exec_rps, execute_latency.ToString().c_str());

  // Entangled submit + pushed completion round trips. A second
  // connection plays the partner; the first member's submission-to-push
  // latency is the wire cost of the coordination path.
  auto partner = net::RemoteClient::Connect("127.0.0.1", server.port());
  if (!partner.ok()) return 1;
  Histogram submit_latency;
  const int pairs = iterations / 10 > 0 ? iterations / 10 : 1;
  const auto submit_start = std::chrono::steady_clock::now();
  for (int i = 0; i < pairs; ++i) {
    const std::string a = "wa" + std::to_string(i);
    const std::string b = "wb" + std::to_string(i);
    const uint64_t t0 = NowMicros();
    auto first = (*client)->SubmitAs(
        a,
        "SELECT '" + a + "', fno INTO ANSWER Reservation WHERE fno IN "
        "(SELECT fno FROM Flights WHERE dest='Paris') AND ('" + b +
        "', fno) IN ANSWER Reservation CHOOSE 1");
    if (!first.ok()) return 1;
    auto second = (*partner)->SubmitAs(
        b,
        "SELECT '" + b + "', fno INTO ANSWER Reservation WHERE fno IN "
        "(SELECT fno FROM Flights WHERE dest='Paris') AND ('" + a +
        "', fno) IN ANSWER Reservation CHOOSE 1");
    if (!second.ok()) return 1;
    if (!first->Wait(std::chrono::milliseconds(5000)).ok()) return 1;
    submit_latency.Record(NowMicros() - t0);
  }
  const double submit_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    submit_start)
          .count();
  std::printf("submit+push: %d pairs = %.0f coords/s, latency{%s}\n", pairs,
              pairs / submit_secs, submit_latency.ToString().c_str());

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\n  \"bench\": \"wire_roundtrip\",\n"
      "  \"codec_frames_per_sec\": %.0f,\n"
      "  \"execute\": {\"iterations\": %d, \"req_per_sec\": %.1f, "
      "\"p50_us\": %llu, \"p99_us\": %llu},\n"
      "  \"submit_push\": {\"pairs\": %d, \"coords_per_sec\": %.1f, "
      "\"p50_us\": %llu, \"p99_us\": %llu},\n"
      "  \"server\": {\"requests\": %zu, \"pushes\": %zu}\n}\n",
      codec_fps, iterations, exec_rps,
      static_cast<unsigned long long>(execute_latency.Percentile(50)),
      static_cast<unsigned long long>(execute_latency.Percentile(99)),
      pairs, pairs / submit_secs,
      static_cast<unsigned long long>(submit_latency.Percentile(50)),
      static_cast<unsigned long long>(submit_latency.Percentile(99)),
      server.stats().requests, server.stats().pushes);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
