#ifndef YOUTOPIA_BENCH_BENCH_COMMON_H_
#define YOUTOPIA_BENCH_BENCH_COMMON_H_

// Shared workload helpers for the experiment benchmarks (see the
// per-experiment index in DESIGN.md and the results in EXPERIMENTS.md).

#include <memory>
#include <string>
#include <utility>

#include "server/client.h"

namespace youtopia::bench {

/// ClientOptions for a benchmark actor: owner-tagged, no history (the
/// drivers submit thousands of statements).
inline ClientOptions OwnerOptions(std::string owner) {
  return ClientOptions(std::move(owner), /*record=*/false);
}

/// Creates a Flights/Reservation database with `num_flights` flights to
/// `num_dests` destinations (round-robin) and indexes on the columns the
/// matcher probes.
inline std::unique_ptr<Youtopia> MakeFlightDb(int num_flights, int num_dests,
                                              uint64_t seed = 42) {
  YoutopiaConfig config;
  config.coordinator.match.rng_seed = seed;
  auto db = std::make_unique<Youtopia>(config);
  Status s = db->ExecuteScript(
      "CREATE TABLE Flights (fno INT NOT NULL, dest TEXT NOT NULL);"
      "CREATE TABLE Reservation (traveler TEXT NOT NULL, fno INT NOT NULL);"
      "CREATE INDEX ON Flights (dest);"
      "CREATE INDEX ON Reservation (traveler);");
  if (!s.ok()) std::abort();
  for (int f = 0; f < num_flights; ++f) {
    auto rid = db->storage().Insert(
        "Flights",
        Tuple({Value::Int64(100 + f),
               Value::String("City" + std::to_string(f % num_dests))}));
    if (!rid.ok()) std::abort();
  }
  return db;
}

/// The paper's pairwise entangled query (§2.1) for arbitrary names.
inline std::string PairSql(const std::string& self, const std::string& other,
                           const std::string& dest = "City0") {
  return "SELECT '" + self + "', fno INTO ANSWER Reservation WHERE fno IN "
         "(SELECT fno FROM Flights WHERE dest='" + dest + "') AND ('" +
         other + "', fno) IN ANSWER Reservation CHOOSE 1";
}

}  // namespace youtopia::bench

#endif  // YOUTOPIA_BENCH_BENCH_COMMON_H_
