#ifndef YOUTOPIA_BENCH_BENCH_COMMON_H_
#define YOUTOPIA_BENCH_BENCH_COMMON_H_

// Shared workload helpers for the experiment benchmarks (see the
// per-experiment index in DESIGN.md and the results in EXPERIMENTS.md).

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "server/client.h"

namespace youtopia::bench {

/// ClientOptions for a benchmark actor: owner-tagged, no history (the
/// drivers submit thousands of statements).
inline ClientOptions OwnerOptions(std::string owner) {
  return ClientOptions(std::move(owner), /*record=*/false);
}

/// Creates a Flights/Reservation database with `num_flights` flights to
/// `num_dests` destinations (round-robin) and indexes on the columns the
/// matcher probes.
inline std::unique_ptr<Youtopia> MakeFlightDb(int num_flights, int num_dests,
                                              uint64_t seed = 42) {
  YoutopiaConfig config;
  config.coordinator.match.rng_seed = seed;
  auto db = std::make_unique<Youtopia>(config);
  Status s = db->ExecuteScript(
      "CREATE TABLE Flights (fno INT NOT NULL, dest TEXT NOT NULL);"
      "CREATE TABLE Reservation (traveler TEXT NOT NULL, fno INT NOT NULL);"
      "CREATE INDEX ON Flights (dest);"
      "CREATE INDEX ON Reservation (traveler);");
  if (!s.ok()) std::abort();
  for (int f = 0; f < num_flights; ++f) {
    auto rid = db->storage().Insert(
        "Flights",
        Tuple({Value::Int64(100 + f),
               Value::String("City" + std::to_string(f % num_dests))}));
    if (!rid.ok()) std::abort();
  }
  return db;
}

/// The pairwise entangled query against an arbitrary answer relation —
/// what the sharded-coordinator benchmarks use to give every worker
/// thread its own independent coordination domain.
inline std::string PairSqlOn(const std::string& relation,
                             const std::string& self,
                             const std::string& other,
                             const std::string& dest = "City0") {
  return "SELECT '" + self + "', fno INTO ANSWER " + relation +
         " WHERE fno IN (SELECT fno FROM Flights WHERE dest='" + dest +
         "') AND ('" + other + "', fno) IN ANSWER " + relation + " CHOOSE 1";
}

/// The paper's pairwise entangled query (§2.1) for arbitrary names.
inline std::string PairSql(const std::string& self, const std::string& other,
                           const std::string& dest = "City0") {
  return PairSqlOn("Reservation", self, other, dest);
}

/// Creates a Flights database plus `num_relations` reservation answer
/// relations (each indexed on traveler) on a coordinator with
/// `num_shards` pending-pool shards, returning the relation names via
/// `relations`. While fresh shards remain, names are chosen (from a
/// candidate pool, via ShardOfRelation) to land on pairwise distinct
/// shards, so worker thread t — which coordinates entirely within
/// (*relations)[t] — genuinely holds a disjoint mutex; relying on
/// fixed names would leave placement to std::hash luck.
inline std::unique_ptr<Youtopia> MakeShardedFlightDb(
    int num_relations, size_t num_shards,
    std::vector<std::string>* relations, int num_flights = 256,
    uint64_t seed = 42) {
  YoutopiaConfig config;
  config.coordinator.match.rng_seed = seed;
  config.coordinator.num_shards = num_shards;
  auto db = std::make_unique<Youtopia>(config);
  Status s = db->ExecuteScript(
      "CREATE TABLE Flights (fno INT NOT NULL, dest TEXT NOT NULL);"
      "CREATE INDEX ON Flights (dest);");
  if (!s.ok()) std::abort();

  relations->clear();
  std::set<size_t> used_shards;
  const size_t distinct_target = std::min<size_t>(
      static_cast<size_t>(num_relations), db->coordinator().num_shards());
  for (int i = 0;
       relations->size() < static_cast<size_t>(num_relations) && i < 4096;
       ++i) {
    const std::string name = "Reservation" + std::to_string(i);
    const size_t shard = db->coordinator().ShardOfRelation(name);
    if (used_shards.size() < distinct_target &&
        !used_shards.insert(shard).second) {
      continue;  // a fresh shard is still available; keep looking
    }
    relations->push_back(name);
  }
  if (relations->size() < static_cast<size_t>(num_relations)) std::abort();

  for (const std::string& relation : *relations) {
    s = db->ExecuteScript(
        "CREATE TABLE " + relation +
        " (traveler TEXT NOT NULL, fno INT NOT NULL);"
        "CREATE INDEX ON " + relation + " (traveler);");
    if (!s.ok()) std::abort();
  }
  for (int f = 0; f < num_flights; ++f) {
    auto rid = db->storage().Insert(
        "Flights",
        Tuple({Value::Int64(100 + f),
               Value::String("City" + std::to_string(f % 4))}));
    if (!rid.ok()) std::abort();
  }
  return db;
}

}  // namespace youtopia::bench

#endif  // YOUTOPIA_BENCH_BENCH_COMMON_H_
