// Experiment PLANCACHE (DESIGN.md decision #7): what the shared plan
// cache buys on the statement hot path.
//
// Two measurements:
//   1. Prepare latency, cold vs warm — the same representative travel
//      statements prepared repeatedly against an engine with the cache
//      off (every call lexes, parses and plans) and with it on (every
//      call after the first is a normalize + LRU hit). The acceptance
//      criterion pins warm >= 5x faster than cold.
//   2. End-to-end throughput of a single-session browse+book travel mix
//      via Youtopia::Execute/Run with the cache off vs on — the whole
//      statement path (locks + execution included), so the speedup here
//      is the honest share Amdahl leaves the prepare stage.
//
// Standalone driver (no google-benchmark) so it can emit its own
// machine-readable summary: BENCH_plan_cache.json (path overridable via
// argv[1]) — what CI's regression gate and artifact trail consume.
//
// Usage: bench_plan_cache [output.json] [prepare_iters] [e2e_rounds]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "server/plan_cache.h"
#include "server/youtopia.h"
#include "travel/data_generator.h"
#include "travel/travel_schema.h"

namespace {

using namespace youtopia;  // NOLINT(build/namespaces) — bench driver

std::unique_ptr<Youtopia> MakeTravelDb(size_t cache_capacity) {
  YoutopiaConfig config;
  config.plan_cache.capacity = cache_capacity;
  auto db = std::make_unique<Youtopia>(config);
  if (!travel::CreateTravelSchema(db.get()).ok()) std::abort();
  travel::DataGeneratorConfig data;
  data.cities = {"NewYork", "Paris", "Rome"};
  data.flights_per_route_per_day = 8;
  data.days = 3;
  if (!travel::GenerateTravelData(db.get(), data).ok()) std::abort();
  return db;
}

/// The statement shapes a travel middle tier replays: indexed browse,
/// unindexed filter, a join, DML. Parameters embedded as literals the
/// way the drivers build them.
std::vector<std::string> HotStatements() {
  return {
      "SELECT fno, dest, price FROM Flights WHERE dest = 'Paris' AND "
      "price <= 900",
      "SELECT fno, price FROM Flights WHERE price <= 500",
      "SELECT r.traveler, f.dest FROM Reservation r, Flights f WHERE "
      "r.fno = f.fno",
      "SELECT city, price FROM Hotels WHERE city = 'Rome'",
      "INSERT INTO Reservation VALUES ('bench_user', 101)",
  };
}

double MicrosPerPrepare(Youtopia* db, const std::vector<std::string>& stmts,
                        int iters) {
  const auto start = std::chrono::steady_clock::now();
  size_t prepares = 0;
  for (int i = 0; i < iters; ++i) {
    for (const std::string& sql : stmts) {
      auto prepared = db->Prepare(sql);
      if (!prepared.ok()) std::abort();
      ++prepares;
    }
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return static_cast<double>(micros) / static_cast<double>(prepares);
}

/// One browse+book round: a few hot browse statements plus one booking
/// pair through Run (entangled registration included). Returns the
/// number of statements driven.
size_t DriveRound(Youtopia* db, int round) {
  size_t statements = 0;
  for (int b = 0; b < 4; ++b) {
    auto rows = db->Execute(
        "SELECT fno, dest, price FROM Flights WHERE dest = 'Paris' AND "
        "price <= 900");
    if (!rows.ok()) std::abort();
    ++statements;
  }
  const std::string a = "pc" + std::to_string(round) + "_a";
  const std::string b = "pc" + std::to_string(round) + "_b";
  for (int m = 0; m < 2; ++m) {
    const std::string& self = m == 0 ? a : b;
    const std::string& other = m == 0 ? b : a;
    auto outcome = db->Run(
        "SELECT '" + self + "', fno INTO ANSWER Reservation WHERE fno IN "
        "(SELECT fno FROM Flights WHERE dest='Paris') AND ('" + other +
        "', fno) IN ANSWER Reservation CHOOSE 1",
        self);
    if (!outcome.ok()) std::abort();
    ++statements;
  }
  return statements;
}

double StatementsPerSecond(size_t cache_capacity, int rounds) {
  auto db = MakeTravelDb(cache_capacity);
  size_t statements = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) statements += DriveRound(db.get(), r);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return micros > 0 ? static_cast<double>(statements) * 1e6 /
                          static_cast<double>(micros)
                    : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_plan_cache.json";
  const int prepare_iters = argc > 2 ? std::atoi(argv[2]) : 2000;
  const int e2e_rounds = argc > 3 ? std::atoi(argv[3]) : 200;

  const std::vector<std::string> stmts = HotStatements();

  // --- 1. Prepare latency, cold vs warm -------------------------------
  auto cold_db = MakeTravelDb(/*cache_capacity=*/0);
  const double cold_us =
      MicrosPerPrepare(cold_db.get(), stmts, prepare_iters);

  auto warm_db = MakeTravelDb(/*cache_capacity=*/256);
  // First pass populates; the measured loop is all hits.
  (void)MicrosPerPrepare(warm_db.get(), stmts, 1);
  const double warm_us =
      MicrosPerPrepare(warm_db.get(), stmts, prepare_iters);
  const double prepare_speedup = warm_us > 0.0 ? cold_us / warm_us : 0.0;
  const PlanCache::Stats warm_stats = warm_db->plan_cache().stats();

  std::printf("prepare: cold %.3f us/stmt, warm %.3f us/stmt -> %.1fx "
              "(hits=%zu misses=%zu)\n",
              cold_us, warm_us, prepare_speedup, warm_stats.hits,
              warm_stats.misses);

  // --- 2. End-to-end travel mix, cache off vs on ----------------------
  const double uncached_sps = StatementsPerSecond(0, e2e_rounds);
  const double cached_sps = StatementsPerSecond(256, e2e_rounds);
  const double e2e_speedup =
      uncached_sps > 0.0 ? cached_sps / uncached_sps : 0.0;
  std::printf("end-to-end: uncached %.1f stmts/s, cached %.1f stmts/s -> "
              "%.2fx\n",
              uncached_sps, cached_sps, e2e_speedup);

  const bool ok = prepare_speedup >= 5.0;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: warm prepare speedup %.2fx below the 5x bar\n",
                 prepare_speedup);
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"plan_cache\",\n"
               "  \"statements\": %zu,\n"
               "  \"prepare_iters\": %d,\n"
               "  \"cold_prepare_us\": %.4f,\n"
               "  \"warm_prepare_us\": %.4f,\n"
               "  \"warm_prepare_speedup\": %.3f,\n"
               "  \"warm_hits\": %zu,\n"
               "  \"warm_misses\": %zu,\n"
               "  \"e2e_rounds\": %d,\n"
               "  \"e2e_uncached_stmts_per_sec\": %.1f,\n"
               "  \"e2e_cached_stmts_per_sec\": %.1f,\n"
               "  \"e2e_speedup\": %.3f\n}\n",
               stmts.size(), prepare_iters, cold_us, warm_us, prepare_speedup,
               warm_stats.hits, warm_stats.misses, e2e_rounds, uncached_sps,
               cached_sps, e2e_speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
