// Experiment EXEC (DESIGN.md decision #5): throughput of the executor
// service on the travel workload, sweeping worker count x session
// count. One driver thread submits every statement as a StatementTask
// (the middle-tier shape: a network thread driving many sessions); the
// pool provides the parallelism. The statement mix mirrors the demo's
// traffic: per booking, a few browse queries (regular SELECTs, shared
// locks — the parallelizable bulk) plus one entangled pair submission
// (coordinator matching round).
//
// Standalone driver (no google-benchmark) so it can emit its own
// machine-readable summary: BENCH_executor.json (path overridable via
// argv[1]), including the 4-workers-vs-1 speedup the acceptance
// criterion tracks.
//
// Usage: bench_executor_throughput [output.json] [requests_per_session]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "service/executor_service.h"
#include "travel/data_generator.h"
#include "travel/middle_tier.h"
#include "travel/travel_schema.h"

namespace {

using namespace youtopia;  // NOLINT(build/namespaces) — bench driver

constexpr int kBrowsePerBooking = 4;

struct SweepResult {
  size_t workers = 0;
  int sessions = 0;
  size_t tasks = 0;
  double wall_ms = 0.0;
  double tasks_per_sec = 0.0;
  size_t matched = 0;
  size_t lock_requeues = 0;
  size_t peak_queue_depth = 0;
  double utilization = 0.0;
};

std::unique_ptr<Youtopia> MakeTravelDb(size_t workers) {
  YoutopiaConfig config;
  config.executor.num_workers = workers;
  config.executor.queue_capacity = 4096;
  auto db = std::make_unique<Youtopia>(config);
  if (!travel::CreateTravelSchema(db.get()).ok()) std::abort();
  travel::DataGeneratorConfig data;
  // A realistically-sized inventory: browse queries scan a few
  // thousand Paris flights (the CPU-heavy, parallelizable bulk of the
  // mix), matching the demo's claim of a loaded system.
  data.cities = {"NewYork", "Paris", "Rome", "London"};
  data.flights_per_route_per_day = 48;
  data.days = 5;
  if (!travel::GenerateTravelData(db.get(), data).ok()) std::abort();
  return db;
}

/// Runs one configuration: `sessions` logical sessions, each submitting
/// `requests` bookings (one entangled pair statement per member plus
/// kBrowsePerBooking browse statements). With `browse_only` the booking
/// submissions are dropped — pure read traffic, the shape the MVCC
/// snapshot path targets — so the report separates "mixed mix" from
/// "read-heavy" throughput in one JSON. Returns throughput over all
/// statements.
SweepResult RunSweep(size_t workers, int sessions, int requests,
                     bool browse_only = false) {
  auto db = MakeTravelDb(workers);
  ExecutorService& exec = db->executor_service();

  std::vector<uint64_t> session_ids(static_cast<size_t>(sessions));
  for (auto& id : session_ids) id = ExecutorService::AllocateSessionId();

  const CoordinatorStats coord_before = db->coordinator().stats();
  const auto start = std::chrono::steady_clock::now();
  size_t tasks = 0;
  int unit = 0;
  for (int r = 0; r < requests; ++r) {
    for (int s = 0; s < sessions; s += 2, ++unit) {
      // Two adjacent sessions form one booking pair; each member's
      // stream is browse, browse, ..., book.
      const std::string a = "ex" + std::to_string(unit) + "_a";
      const std::string b = "ex" + std::to_string(unit) + "_b";
      const std::string members[2] = {a, b};
      for (int m = 0; m < 2; ++m) {
        const uint64_t session =
            session_ids[static_cast<size_t>((s + m) % sessions)];
        for (int i = 0; i < kBrowsePerBooking; ++i) {
          StatementTask browse;
          // Filter on price (unindexed) so the browse path does real
          // per-row work under its shared lock.
          browse.sql = "SELECT fno, dest, price FROM Flights WHERE dest = "
                       "'Paris' AND price <= 900";
          browse.session = session;
          browse.kind = StatementTask::Kind::kExecute;
          if (!exec.Submit(std::move(browse)).ok()) std::abort();
          ++tasks;
        }
        if (browse_only) continue;
        travel::TravelRequest request;
        request.user = members[m];
        request.flight_companions.push_back(members[1 - m]);
        request.dest = "Paris";
        auto sql = travel::TravelService::BuildEntangledSql(request);
        if (!sql.ok()) std::abort();
        StatementTask book;
        book.sql = sql.TakeValue();
        book.owner = members[m];
        book.session = session;
        book.kind = StatementTask::Kind::kRun;
        if (!exec.Submit(std::move(book)).ok()) std::abort();
        ++tasks;
      }
    }
  }
  if (!exec.Drain(std::chrono::milliseconds(120000)).ok()) std::abort();
  const auto wall =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();

  SweepResult result;
  result.workers = workers;
  result.sessions = sessions;
  result.tasks = tasks;
  result.wall_ms = static_cast<double>(wall) / 1000.0;
  result.tasks_per_sec =
      wall > 0 ? static_cast<double>(tasks) * 1e6 / static_cast<double>(wall)
               : 0.0;
  const CoordinatorStats coord_after = db->coordinator().stats();
  result.matched = coord_after.matched_queries - coord_before.matched_queries;
  const ExecutorService::Stats stats = exec.stats();
  result.lock_requeues = stats.lock_requeues;
  result.peak_queue_depth = stats.peak_queue_depth;
  result.utilization = stats.WorkerUtilization();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_executor.json";
  const int requests = argc > 2 ? std::atoi(argv[2]) : 24;

  const size_t worker_sweep[] = {0, 1, 2, 4, 8};
  const int session_sweep[] = {2, 8, 16};

  std::vector<SweepResult> results;
  std::printf("%-8s %-9s %-8s %-10s %-12s %-9s %s\n", "workers", "sessions",
              "tasks", "wall_ms", "tasks/s", "requeues", "util");
  for (size_t workers : worker_sweep) {
    for (int sessions : session_sweep) {
      SweepResult r = RunSweep(workers, sessions, requests);
      std::printf("%-8zu %-9d %-8zu %-10.1f %-12.1f %-9zu %.1f%%\n", r.workers,
                  r.sessions, r.tasks, r.wall_ms, r.tasks_per_sec,
                  r.lock_requeues, r.utilization * 100.0);
      results.push_back(r);
    }
  }

  // Browse-only variant: the same sweep shape restricted to pure read
  // traffic (no bookings), at the widest session count. This is the leg
  // the MVCC snapshot path serves lock-free; reporting it beside the
  // mixed mix keeps the read-heavy trajectory visible in the same JSON
  // the CI gate consumes. Appended AFTER "results" as its own object so
  // the existing results[i] index paths in the baseline manifest keep
  // their meaning.
  std::vector<SweepResult> browse_results;
  std::printf("-- browse-only (read-heavy) variant --\n");
  for (size_t workers : {size_t{1}, size_t{4}}) {
    SweepResult r = RunSweep(workers, session_sweep[2], requests,
                             /*browse_only=*/true);
    std::printf("%-8zu %-9d %-8zu %-10.1f %-12.1f %-9zu %.1f%%\n", r.workers,
                r.sessions, r.tasks, r.wall_ms, r.tasks_per_sec,
                r.lock_requeues, r.utilization * 100.0);
    browse_results.push_back(r);
  }

  // Acceptance metric: multi-session throughput at 4 workers vs 1, at
  // the widest session count.
  double one_worker = 0.0, four_workers = 0.0;
  const int widest = session_sweep[2];
  for (const SweepResult& r : results) {
    if (r.sessions != widest) continue;
    if (r.workers == 1) one_worker = r.tasks_per_sec;
    if (r.workers == 4) four_workers = r.tasks_per_sec;
  }
  const double speedup = one_worker > 0.0 ? four_workers / one_worker : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("speedup (4 workers vs 1, %d sessions): %.2fx on %u core(s)\n",
              widest, speedup, cores);
  if (cores < 2) {
    std::printf("note: single-core host — worker-count scaling is bounded "
                "at ~1.0x here; run on multi-core hardware to observe the "
                "browse-path parallelism.\n");
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"executor_throughput\",\n"
               "  \"workload\": \"travel browse+book mix "
               "(%d browse per booking)\",\n  \"results\": [\n",
               kBrowsePerBooking);
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(out,
                 "    {\"workers\": %zu, \"sessions\": %d, \"tasks\": %zu, "
                 "\"wall_ms\": %.1f, \"tasks_per_sec\": %.1f, "
                 "\"matched\": %zu, \"lock_requeues\": %zu, "
                 "\"peak_queue_depth\": %zu, \"utilization\": %.3f}%s\n",
                 r.workers, r.sessions, r.tasks, r.wall_ms, r.tasks_per_sec,
                 r.matched, r.lock_requeues, r.peak_queue_depth,
                 r.utilization, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"browse_only\": [\n");
  for (size_t i = 0; i < browse_results.size(); ++i) {
    const SweepResult& r = browse_results[i];
    std::fprintf(out,
                 "    {\"workers\": %zu, \"sessions\": %d, \"tasks\": %zu, "
                 "\"wall_ms\": %.1f, \"tasks_per_sec\": %.1f, "
                 "\"lock_requeues\": %zu, \"utilization\": %.3f}%s\n",
                 r.workers, r.sessions, r.tasks, r.wall_ms, r.tasks_per_sec,
                 r.lock_requeues, r.utilization,
                 i + 1 < browse_results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"hardware_concurrency\": %u,\n"
               "  \"speedup_4v1\": %.3f\n}\n",
               cores, speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
