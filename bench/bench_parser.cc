// Experiment SUB (DESIGN.md): query-compiler throughput — lexing,
// parsing and normalizing the paper's entangled query (§2.1), which is
// on the critical path of every submission.

#include <benchmark/benchmark.h>

#include "entangle/normalizer.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace youtopia::bench {
namespace {

const char* kPaperQuery =
    "SELECT 'Kramer', fno INTO ANSWER Reservation "
    "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
    "AND ('Jerry', fno) IN ANSWER Reservation "
    "CHOOSE 1";

const char* kMultiHeadQuery =
    "SELECT 'J', fno INTO ANSWER Reservation, 'J', hid INTO ANSWER "
    "HotelReservation WHERE fno IN (SELECT fno FROM Flights WHERE "
    "dest='Paris' AND price <= 900) AND hid IN (SELECT hid FROM Hotels "
    "WHERE city='Paris') AND ('K', fno) IN ANSWER Reservation AND "
    "('K', hid) IN ANSWER HotelReservation CHOOSE 1";

void BM_LexPaperQuery(benchmark::State& state) {
  for (auto _ : state) {
    Lexer lexer(kPaperQuery);
    auto tokens = lexer.Tokenize();
    if (!tokens.ok()) std::abort();
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_LexPaperQuery);

void BM_ParsePaperQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = Parser::ParseStatement(kPaperQuery);
    if (!stmt.ok()) std::abort();
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParsePaperQuery);

void BM_ParseMultiHeadQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = Parser::ParseStatement(kMultiHeadQuery);
    if (!stmt.ok()) std::abort();
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseMultiHeadQuery);

void BM_NormalizePaperQuery(benchmark::State& state) {
  auto stmt = Parser::ParseStatement(kPaperQuery);
  if (!stmt.ok()) std::abort();
  const auto& select = static_cast<const SelectStatement&>(*stmt.value());
  for (auto _ : state) {
    auto query = Normalizer::Normalize(select, 1, "Kramer", kPaperQuery);
    if (!query.ok()) std::abort();
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_NormalizePaperQuery);

void BM_ParseAndNormalizeEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = Parser::ParseStatement(kMultiHeadQuery);
    if (!stmt.ok()) std::abort();
    auto query = Normalizer::Normalize(
        static_cast<const SelectStatement&>(*stmt.value()), 1, "J",
        kMultiHeadQuery);
    if (!query.ok()) std::abort();
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_ParseAndNormalizeEndToEnd);

}  // namespace
}  // namespace youtopia::bench
