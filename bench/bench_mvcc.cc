// Experiment MVCC (DESIGN.md decision #10): browse throughput of the
// lock-free snapshot SELECT path versus the seed's 2PL read path, under
// a sweep of concurrent writers shaped like the travel mix's bookings:
// multi-row transactions that hold their exclusive table locks across a
// coordination window (an entangled booking parked mid-round) before
// committing. That idle-held X lock is exactly what the paper's browse
// traffic stalls behind: with num_versions = 1 the stack degrades to
// seed 2PL semantics and every browse queues until the writer commits;
// with num_versions > 1 the same SELECTs read a snapshot and never
// block.
//
// Standalone driver (no google-benchmark) so it can emit its own
// machine-readable summary: BENCH_mvcc.json (path overridable via
// argv[1]), including the headline mvcc_vs_2pl_browse_speedup the
// acceptance criterion gates at >= 2x on the most contended leg
// (writers = 4).
//
// Usage: bench_mvcc [output.json] [leg_ms] [rows]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/youtopia.h"

namespace {

using namespace youtopia;  // NOLINT(build/namespaces) — bench driver

constexpr int kReaders = 4;
constexpr size_t kMvccVersions = 8;
// Each write transaction touches a handful of rows and then holds its
// locks across a simulated coordination round before committing — the
// entangled-booking shape (install happens only once the whole group
// matches, with the 2PL locks held throughout the wait).
constexpr int kRowsPerWriteTxn = 8;
constexpr int kHoldUs = 10000;

struct LegResult {
  const char* mode = "";
  size_t num_versions = 1;
  size_t writers = 0;
  size_t reads = 0;
  size_t read_errors = 0;
  size_t updates = 0;
  double wall_ms = 0.0;
  double reads_per_sec = 0.0;
  double updates_per_sec = 0.0;
};

std::unique_ptr<Youtopia> MakeDb(size_t num_versions, int rows) {
  YoutopiaConfig config;
  config.mvcc.num_versions = num_versions;
  auto db = std::make_unique<Youtopia>(config);
  if (!db->Execute("CREATE TABLE Inv (id INT, qty INT, price INT)").ok()) {
    std::abort();
  }
  for (int i = 0; i < rows; ++i) {
    const std::string sql = "INSERT INTO Inv VALUES (" + std::to_string(i) +
                            ", 0, " + std::to_string((i * 37) % 1000) + ")";
    if (!db->Execute(sql).ok()) std::abort();
  }
  // Point browses go through the hash index: the interesting cost in
  // this experiment is lock waiting, not scan CPU, so the read itself
  // is kept cheap.
  if (!db->Execute("CREATE INDEX ON Inv (id)").ok()) std::abort();
  return db;
}

/// One fixed-duration leg: kReaders browse threads and `writers`
/// booking-shaped write transactions (kRowsPerWriteTxn updates, then
/// kHoldUs of lock-held coordination wait, then commit) against a fresh
/// instance configured with `num_versions`. Reads that fail (lock
/// timeouts under 2PL) count as errors, not throughput — the metric is
/// *successful* browses per second, which is what a middle tier
/// actually serves.
LegResult RunLeg(size_t num_versions, size_t writers,
                 std::chrono::milliseconds leg, int rows) {
  auto db = MakeDb(num_versions, rows);
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::atomic<size_t> read_errors{0};
  std::atomic<size_t> updates{0};

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      // Indexed point browses across the table: each statement's
      // in-engine time is tiny, so what the sweep measures is how long
      // a browse waits behind the writers' held X locks (2PL) versus
      // not at all (MVCC snapshots).
      size_t n = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_acquire)) {
        const int64_t id =
            static_cast<int64_t>((n++ * 13) % static_cast<size_t>(rows));
        const std::string sql =
            "SELECT id, qty FROM Inv WHERE id = " + std::to_string(id);
        if (db->Execute(sql).ok()) {
          reads.fetch_add(1, std::memory_order_relaxed);
        } else {
          read_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      TxnManager& txns = db->txn_manager();
      size_t base = w * 131;
      int64_t seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto txn = txns.Begin();
        bool ok = true;
        for (int k = 0; k < kRowsPerWriteTxn && ok; ++k) {
          const RowId rid =
              static_cast<RowId>((base + static_cast<size_t>(k) * 7) %
                                 static_cast<size_t>(rows));
          const Tuple t({Value::Int64(static_cast<int64_t>(rid)),
                         Value::Int64(++seq),
                         Value::Int64(static_cast<int64_t>((rid * 37) % 1000))});
          ok = txns.Update(txn.get(), "Inv", rid, t).ok();
        }
        if (!ok) {
          (void)txns.Abort(txn.get());
          continue;
        }
        // The coordination window: locks stay held, CPU stays idle.
        std::this_thread::sleep_for(std::chrono::microseconds(kHoldUs));
        if (txns.Commit(txn.get()).ok()) {
          updates.fetch_add(1, std::memory_order_relaxed);
        }
        base += 31;
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(leg);
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double wall_us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());

  LegResult result;
  result.mode = num_versions > 1 ? "mvcc" : "2pl";
  result.num_versions = num_versions;
  result.writers = writers;
  result.reads = reads.load();
  result.read_errors = read_errors.load();
  result.updates = updates.load();
  result.wall_ms = wall_us / 1000.0;
  result.reads_per_sec =
      wall_us > 0 ? static_cast<double>(result.reads) * 1e6 / wall_us : 0.0;
  result.updates_per_sec =
      wall_us > 0 ? static_cast<double>(result.updates) * 1e6 / wall_us : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_mvcc.json";
  const int leg_ms = argc > 2 ? std::atoi(argv[2]) : 400;
  const int rows = argc > 3 ? std::atoi(argv[3]) : 800;

  const size_t writer_sweep[] = {0, 1, 2, 4};
  std::vector<LegResult> legs;
  std::printf("%-6s %-10s %-8s %-9s %-12s %-9s %s\n", "mode", "versions",
              "writers", "reads", "reads/s", "rd_errs", "write_txns/s");
  for (size_t writers : writer_sweep) {
    for (size_t num_versions : {size_t{1}, kMvccVersions}) {
      LegResult leg = RunLeg(num_versions, writers,
                             std::chrono::milliseconds(leg_ms), rows);
      std::printf("%-6s %-10zu %-8zu %-9zu %-12.1f %-9zu %.1f\n", leg.mode,
                  leg.num_versions, leg.writers, leg.reads, leg.reads_per_sec,
                  leg.read_errors, leg.updates_per_sec);
      legs.push_back(leg);
    }
  }

  // Headline: MVCC vs 2PL successful-browse throughput on the same,
  // most contended leg (writers = 4). The acceptance floor is 2x; if
  // the 2PL side is fully starved the ratio is reported as a large
  // sentinel rather than a divide-by-zero.
  const size_t headline_writers = writer_sweep[3];
  double two_pl = 0.0, mvcc = 0.0, mvcc_uncontended = 0.0;
  for (const LegResult& leg : legs) {
    if (leg.writers == headline_writers && leg.num_versions == 1) {
      two_pl = leg.reads_per_sec;
    }
    if (leg.writers == headline_writers && leg.num_versions > 1) {
      mvcc = leg.reads_per_sec;
    }
    if (leg.writers == 0 && leg.num_versions > 1) {
      mvcc_uncontended = leg.reads_per_sec;
    }
  }
  const double speedup =
      two_pl > 0.0 ? mvcc / two_pl : (mvcc > 0.0 ? 999.0 : 0.0);
  std::printf("browse speedup (mvcc vs 2pl, %zu writers, %d readers): %.2fx\n",
              headline_writers, kReaders, speedup);

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"mvcc\",\n"
               "  \"workload\": \"indexed browses vs booking txns holding "
               "locks across a coordination window\",\n"
               "  \"rows\": %d,\n  \"readers\": %d,\n  \"leg_ms\": %d,\n"
               "  \"rows_per_write_txn\": %d,\n  \"lock_hold_us\": %d,\n"
               "  \"legs\": [\n",
               rows, kReaders, leg_ms, kRowsPerWriteTxn, kHoldUs);
  for (size_t i = 0; i < legs.size(); ++i) {
    const LegResult& leg = legs[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"num_versions\": %zu, "
                 "\"writers\": %zu, \"reads\": %zu, \"read_errors\": %zu, "
                 "\"reads_per_sec\": %.1f, \"write_txns\": %zu, "
                 "\"write_txns_per_sec\": %.1f, \"wall_ms\": %.1f}%s\n",
                 leg.mode, leg.num_versions, leg.writers, leg.reads,
                 leg.read_errors, leg.reads_per_sec, leg.updates,
                 leg.updates_per_sec, leg.wall_ms,
                 i + 1 < legs.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"headline_writers\": %zu,\n"
               "  \"mvcc_browse_reads_per_sec\": %.1f,\n"
               "  \"mvcc_uncontended_reads_per_sec\": %.1f,\n"
               "  \"mvcc_vs_2pl_browse_speedup\": %.3f\n}\n",
               std::thread::hardware_concurrency(), headline_writers, mvcc,
               mvcc_uncontended, speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return speedup >= 2.0 ? 0 : 1;
}
