// Experiment OPENLOOP (DESIGN.md decision #12): overload behavior of
// the wire front end under an *open-loop* arrival process. Every other
// bench in the repo is closed-loop (N sessions issue-and-wait), which
// by construction cannot show queueing collapse: a slow server slows
// its own offered load. Here a Poisson arrival schedule keeps issuing
// at the configured rate regardless of completions, the way a
// population of independent end users does.
//
// Phases:
//   1. capacity — closed-loop probe (all connections issue-and-wait the
//      browse+book mix) to measure the server's saturation throughput
//      on this box;
//   2. legs at 50% / 90% / 110% of that capacity, open-loop. Latency is
//      measured from the *scheduled arrival*, so client-side queueing
//      under overload counts against the server (no coordinated
//      omission). Shed requests (kOverloaded) are counted separately
//      from goodput.
//
// The graceful-degradation criterion from ROADMAP: at 110% offered
// load, goodput must stay >= 0.9x its 90% value (enforced in-binary and
// by bench/baselines/manifest.json), and the excess must be *shed* with
// kOverloaded, not absorbed as unbounded queueing delay.
//
// Usage: bench_openloop [output.json] [leg_secs] [connections] [workers]
//                       [--connect host:port]
//
// Default mode spins up an in-process Youtopia (travel schema + data,
// executor pool with an admission high-water mark) behind a real
// YoutopiaServer and talks to it over loopback TCP. --connect drives an
// external youtopia_server instead (start it with --travel and
// --admission so the schema exists and shedding is on).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "net/remote_client.h"
#include "net/server.h"
#include "server/youtopia.h"
#include "travel/data_generator.h"
#include "travel/travel_schema.h"

namespace {

using namespace youtopia;  // NOLINT(build/namespaces) — bench driver
using Clock = std::chrono::steady_clock;

constexpr double kLegFractions[] = {0.5, 0.9, 1.1};

/// 80% browse (indexed SELECT), 20% book (INSERT). The same mix the
/// closed-loop travel workload drives, reduced to its two statement
/// shapes.
std::string PickStatement(Random* rng, uint64_t* traveler_seq) {
  if (rng->NextDouble() < 0.8) {
    return "SELECT fno, price FROM Flights WHERE dest='Paris'";
  }
  const uint64_t t = (*traveler_seq)++;
  const int64_t fno = rng->NextInRange(0, 999);
  return "INSERT INTO Reservation VALUES ('ol" + std::to_string(t) + "', " +
         std::to_string(fno) + ")";
}

struct LegResult {
  double offered_rps = 0;
  double achieved_offered_rps = 0;
  double goodput_rps = 0;
  size_t issued = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t timeouts = 0;
  size_t errors = 0;
  Histogram latency;

  double shed_rate() const {
    return issued == 0 ? 0.0
                       : static_cast<double>(shed) /
                             static_cast<double>(issued);
  }
};

/// One connection plus its in-order harvest queue. The server's
/// per-session FIFO means OK responses complete in issue order on a
/// connection, so a single harvester doing future.get() in order
/// observes each completion promptly; sheds resolve early and are
/// merely harvested late, which only their (uncounted) latency sees.
struct Conn {
  std::unique_ptr<net::RemoteClient> client;

  struct InFlight {
    std::future<Result<QueryResult>> future;
    Clock::time_point scheduled;
  };
  std::mutex m;
  std::condition_variable cv;
  std::deque<InFlight> queue;
  bool done = false;

  // Per-connection tallies, merged after the harvester joins.
  size_t ok = 0;
  size_t shed = 0;
  size_t timeouts = 0;
  size_t errors = 0;
  Histogram latency;
};

void HarvestLoop(Conn* conn) {
  for (;;) {
    Conn::InFlight item;
    {
      std::unique_lock<std::mutex> lock(conn->m);
      conn->cv.wait(lock,
                    [conn] { return conn->done || !conn->queue.empty(); });
      if (conn->queue.empty()) return;
      item = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    const auto result = item.future.get();
    const auto micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              item.scheduled)
            .count());
    if (result.ok()) {
      ++conn->ok;
      conn->latency.Record(micros);
    } else {
      switch (result.status().code()) {
        case StatusCode::kOverloaded:
          ++conn->shed;
          break;
        case StatusCode::kTimedOut:
          ++conn->timeouts;
          break;
        default:
          ++conn->errors;
          std::fprintf(stderr, "request failed: %s\n",
                       result.status().ToString().c_str());
          break;
      }
    }
  }
}

/// Clears the bookings accumulated by a probe or leg so every leg runs
/// against the same table sizes — otherwise later legs pay index-growth
/// costs earlier ones did not, confounding the goodput comparison.
void ResetReservations(Conn* conn) {
  const auto result = conn->client->Execute("DELETE FROM Reservation");
  if (!result.ok()) {
    std::fprintf(stderr, "reservation reset failed: %s\n",
                 result.status().ToString().c_str());
  }
}

/// Closed-loop saturation probe: every connection issues-and-waits the
/// mix for `secs`; the aggregate OK rate is a first estimate of this
/// box's capacity (refined by an open-loop calibration leg — a
/// sync-call closed loop caps pipelining at one request per connection,
/// so it mis-estimates what the open-loop machinery itself sustains).
double MeasureCapacity(std::vector<Conn>* conns, double secs) {
  std::atomic<size_t> total_ok{0};
  std::vector<std::thread> threads;
  const auto end = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(secs));
  const auto start = Clock::now();
  for (size_t i = 0; i < conns->size(); ++i) {
    threads.emplace_back([conn = &(*conns)[i], i, end, &total_ok] {
      Random rng(0x9E37 + i);
      uint64_t traveler_seq = i * 1'000'000'000ull;
      size_t ok = 0;
      while (Clock::now() < end) {
        auto result =
            conn->client->Execute(PickStatement(&rng, &traveler_seq));
        if (result.ok()) ++ok;
      }
      total_ok.fetch_add(ok);
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(total_ok.load()) / wall;
}

/// One open-loop leg: Poisson arrivals at `offered_rps` for `secs`,
/// round-robined over the connections, then a full drain.
LegResult RunLeg(std::vector<Conn>* conns, double offered_rps, double secs,
                 uint64_t seed) {
  LegResult leg;
  leg.offered_rps = offered_rps;

  for (auto& conn : *conns) {
    conn.done = false;
    conn.ok = conn.shed = conn.timeouts = conn.errors = 0;
    conn.latency = Histogram();
  }
  std::vector<std::thread> harvesters;
  for (auto& conn : *conns) {
    harvesters.emplace_back([&conn] { HarvestLoop(&conn); });
  }

  Random rng(seed);
  uint64_t traveler_seq = seed * 1'000'000'000ull;
  const auto start = Clock::now();
  const auto leg_end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(secs));
  auto next_arrival = start;
  size_t round_robin = 0;
  while (next_arrival < leg_end) {
    std::this_thread::sleep_until(next_arrival);
    Conn& conn = (*conns)[round_robin++ % conns->size()];
    auto future =
        conn.client->ExecuteAsync(PickStatement(&rng, &traveler_seq));
    {
      std::lock_guard<std::mutex> lock(conn.m);
      conn.queue.push_back(Conn::InFlight{std::move(future), next_arrival});
    }
    conn.cv.notify_one();
    ++leg.issued;
    // Exponential inter-arrival time = Poisson arrival process.
    const double u = rng.NextDouble();
    const double gap_secs = -std::log1p(-u) / offered_rps;
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap_secs));
  }
  const double issue_wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  for (auto& conn : *conns) {
    {
      std::lock_guard<std::mutex> lock(conn.m);
      conn.done = true;
    }
    conn.cv.notify_all();
  }
  for (auto& t : harvesters) t.join();
  const double drain_wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  for (auto& conn : *conns) {
    leg.ok += conn.ok;
    leg.shed += conn.shed;
    leg.timeouts += conn.timeouts;
    leg.errors += conn.errors;
    leg.latency.Merge(conn.latency);
  }
  leg.achieved_offered_rps = static_cast<double>(leg.issued) / issue_wall;
  leg.goodput_rps = static_cast<double>(leg.ok) / drain_wall;
  return leg;
}

void PrintLeg(const char* label, const LegResult& leg) {
  std::printf(
      "%s: offered %.0f/s (achieved %.0f/s), goodput %.0f/s, "
      "shed %zu (%.1f%%), timeouts %zu, errors %zu, latency{%s}\n",
      label, leg.offered_rps, leg.achieved_offered_rps, leg.goodput_rps,
      leg.shed, 100.0 * leg.shed_rate(), leg.timeouts, leg.errors,
      leg.latency.ToString().c_str());
}

void WriteLegJson(FILE* out, const char* key, const LegResult& leg,
                  bool trailing_comma) {
  std::fprintf(
      out,
      "  \"%s\": {\"offered_rps\": %.1f, \"achieved_offered_rps\": %.1f, "
      "\"goodput_rps\": %.1f, \"issued\": %zu, \"ok\": %zu, \"shed\": %zu, "
      "\"shed_rate\": %.4f, \"timeouts\": %zu, \"errors\": %zu, "
      "\"p50_us\": %llu, \"p90_us\": %llu, \"p99_us\": %llu}%s\n",
      key, leg.offered_rps, leg.achieved_offered_rps, leg.goodput_rps,
      leg.issued, leg.ok, leg.shed, leg.shed_rate(), leg.timeouts,
      leg.errors,
      static_cast<unsigned long long>(leg.latency.Percentile(50)),
      static_cast<unsigned long long>(leg.latency.Percentile(90)),
      static_cast<unsigned long long>(leg.latency.Percentile(99)),
      trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_openloop.json";
  double leg_secs = 2.0;
  size_t connections = 8;
  size_t workers = 2;
  std::string connect;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
      continue;
    }
    switch (positional++) {
      case 0: out_path = argv[i]; break;
      case 1: leg_secs = std::atof(argv[i]); break;
      case 2: connections = static_cast<size_t>(std::atoi(argv[i])); break;
      case 3: workers = static_cast<size_t>(std::atoi(argv[i])); break;
      default:
        std::fprintf(stderr,
                     "usage: bench_openloop [out.json] [leg_secs] "
                     "[connections] [workers] [--connect host:port]\n");
        return 2;
    }
  }
  if (leg_secs <= 0 || connections == 0) {
    std::fprintf(stderr, "bad leg_secs/connections\n");
    return 2;
  }

  // Either an in-process engine+server, or an external one.
  std::unique_ptr<Youtopia> db;
  std::unique_ptr<net::YoutopiaServer> server;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  if (connect.empty()) {
    YoutopiaConfig config;
    config.executor.num_workers = workers;
    config.executor.queue_capacity = 512;
    // Well above the per-connection pipeline at <=90% load, well below
    // the point where queueing delay dominates: overload sheds instead
    // of stacking seconds of queue in front of every statement.
    config.executor.admission_high_water = 64;
    db = std::make_unique<Youtopia>(config);
    if (!travel::CreateTravelSchema(db.get()).ok()) return 1;
    travel::DataGeneratorConfig data;
    data.cities = {"NewYork", "Paris", "Rome"};
    data.flights_per_route_per_day = 2;
    data.days = 2;
    auto generated = travel::GenerateTravelData(db.get(), data);
    if (!generated.ok()) {
      std::fprintf(stderr, "data: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    server = std::make_unique<net::YoutopiaServer>(db.get());
    if (!server->Start().ok()) return 1;
    port = server->port();
  } else {
    const auto colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect wants host:port\n");
      return 2;
    }
    host = connect.substr(0, colon);
    port = static_cast<uint16_t>(std::atoi(connect.c_str() + colon + 1));
  }

  std::vector<Conn> conns(connections);
  for (auto& conn : conns) {
    // No overload retry: the bench must see every shed. No reconnect:
    // a dropped server mid-bench should fail loudly.
    auto client = net::RemoteClient::Connect(host, port);
    if (!client.ok()) {
      std::fprintf(stderr, "connect %s:%u: %s\n", host.c_str(), port,
                   client.status().ToString().c_str());
      return 1;
    }
    conn.client = std::move(*client);
  }

  const double probe_secs = std::max(1.0, leg_secs / 2.0);
  const double probe_rps = MeasureCapacity(&conns, probe_secs);
  std::printf("probe (closed-loop, %zu conns): %.0f req/s\n", connections,
              probe_rps);
  if (probe_rps <= 0) {
    std::fprintf(stderr, "capacity probe produced no completions\n");
    return 1;
  }
  ResetReservations(&conns[0]);

  // Calibration ramp: short open-loop sub-legs at rising offered rates;
  // capacity is the best goodput any of them sustains. This measures
  // the saturation throughput of the *whole* pipeline — server plus
  // pacing, pipelining and harvesting overhead — which is what the
  // measured legs are fractions of. The closed-loop probe alone skews
  // both ways (it caps pipelining at one request per connection but
  // pays none of the open-loop client overhead), and a single deeply
  // oversaturated leg underestimates: flooding the pacing thread costs
  // goodput on small boxes. The ramp brackets the knee instead.
  double capacity = 0;
  const double ramp_secs = std::max(0.5, probe_secs / 2.0);
  for (const double fraction : {0.5, 0.75, 1.0, 1.25}) {
    const LegResult ramp =
        RunLeg(&conns, fraction * probe_rps, ramp_secs,
               /*seed=*/static_cast<uint64_t>(900 + 100 * fraction));
    std::printf("ramp %.0f%%: ", 100 * fraction);
    PrintLeg("probe", ramp);
    capacity = std::max(capacity, ramp.goodput_rps);
    ResetReservations(&conns[0]);
  }
  std::printf("capacity (open-loop ramp): %.0f req/s\n", capacity);
  if (capacity <= 0) {
    std::fprintf(stderr, "calibration ramp produced no completions\n");
    return 1;
  }

  LegResult legs[3];
  const char* leg_keys[3] = {"leg_50", "leg_90", "leg_110"};
  for (int i = 0; i < 3; ++i) {
    legs[i] = RunLeg(&conns, kLegFractions[i] * capacity, leg_secs,
                     /*seed=*/1000 + i);
    PrintLeg(leg_keys[i], legs[i]);
    ResetReservations(&conns[0]);
  }

  const double ratio =
      legs[1].goodput_rps > 0 ? legs[2].goodput_rps / legs[1].goodput_rps
                              : 0.0;
  std::printf("goodput@110%% / goodput@90%% = %.3f\n", ratio);

  size_t total_errors = 0;
  for (const LegResult& leg : legs) total_errors += leg.errors;

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"openloop\",\n"
               "  \"mode\": \"%s\",\n"
               "  \"connections\": %zu,\n  \"workers\": %zu,\n"
               "  \"leg_secs\": %.1f,\n  \"probe_rps\": %.1f,\n"
               "  \"capacity_rps\": %.1f,\n",
               connect.empty() ? "inproc" : "connect", connections, workers,
               leg_secs, probe_rps, capacity);
  for (int i = 0; i < 3; ++i) WriteLegJson(out, leg_keys[i], legs[i], true);
  std::fprintf(out,
               "  \"goodput_110_over_90\": %.4f,\n"
               "  \"shed_total\": %zu,\n  \"errors_total\": %zu\n}\n",
               ratio, legs[0].shed + legs[1].shed + legs[2].shed,
               total_errors);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  // The acceptance criteria, self-enforced like the other standalone
  // benches: graceful degradation (goodput holds past saturation) and
  // no non-shed, non-timeout failures.
  if (ratio < 0.9) {
    std::fprintf(stderr,
                 "FAIL: goodput collapsed past saturation "
                 "(110%%/90%% = %.3f < 0.9)\n",
                 ratio);
    return 1;
  }
  if (total_errors > 0) {
    std::fprintf(stderr, "FAIL: %zu hard errors\n", total_errors);
    return 1;
  }
  return 0;
}
