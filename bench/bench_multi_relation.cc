// Experiment S2 (DESIGN.md): "Book a flight and a hotel with a friend" —
// cost of coordinating over one answer relation versus two (the query
// carries two heads and two partner constraints). Also sweeps hotel
// inventory to show grounding cost tracks candidate-set size.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace youtopia::bench {
namespace {

std::unique_ptr<Youtopia> MakeTravelDb(int num_hotels) {
  auto db = MakeFlightDb(/*num_flights=*/256, /*num_dests=*/4);
  Status s = db->ExecuteScript(
      "CREATE TABLE Hotels (hid INT NOT NULL, city TEXT NOT NULL);"
      "CREATE TABLE HotelReservation (traveler TEXT NOT NULL, hid INT NOT "
      "NULL);"
      "CREATE INDEX ON Hotels (city);");
  if (!s.ok()) std::abort();
  for (int h = 0; h < num_hotels; ++h) {
    auto rid = db->storage().Insert(
        "Hotels", Tuple({Value::Int64(500 + h),
                         Value::String("City" + std::to_string(h % 4))}));
    if (!rid.ok()) std::abort();
  }
  return db;
}

std::string PairFlightHotelSql(const std::string& self,
                               const std::string& other) {
  return "SELECT '" + self + "', fno INTO ANSWER Reservation, '" + self +
         "', hid INTO ANSWER HotelReservation WHERE "
         "fno IN (SELECT fno FROM Flights WHERE dest='City0') AND "
         "hid IN (SELECT hid FROM Hotels WHERE city='City0') AND "
         "('" + other + "', fno) IN ANSWER Reservation AND "
         "('" + other + "', hid) IN ANSWER HotelReservation CHOOSE 1";
}

/// Baseline series: single relation (flight only).
void BM_PairFlightOnly(benchmark::State& state) {
  auto db = MakeTravelDb(/*num_hotels=*/64);
  Client client(db.get(), OwnerOptions("bench"));
  int64_t pair = 0;
  for (auto _ : state) {
    const std::string a = "A" + std::to_string(pair);
    const std::string b = "B" + std::to_string(pair);
    ++pair;
    auto ha = client.SubmitAs(a, PairSql(a, b));
    auto hb = client.SubmitAs(b, PairSql(b, a));
    if (!ha.ok() || !hb.ok() || !hb->Done()) std::abort();
  }
  state.counters["answer_relations"] = benchmark::Counter(1);
}
BENCHMARK(BM_PairFlightOnly)->Unit(benchmark::kMicrosecond);

/// Two answer relations per query (flight + hotel).
void BM_PairFlightAndHotel(benchmark::State& state) {
  auto db = MakeTravelDb(static_cast<int>(state.range(0)));
  Client client(db.get(), OwnerOptions("bench"));
  int64_t pair = 0;
  for (auto _ : state) {
    const std::string a = "A" + std::to_string(pair);
    const std::string b = "B" + std::to_string(pair);
    ++pair;
    auto ha = client.SubmitAs(a, PairFlightHotelSql(a, b));
    auto hb = client.SubmitAs(b, PairFlightHotelSql(b, a));
    if (!ha.ok() || !hb.ok() || !hb->Done()) std::abort();
  }
  state.counters["answer_relations"] = benchmark::Counter(2);
  state.counters["hotels"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_PairFlightAndHotel)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace youtopia::bench
