// Fuzz target: WAL recovery. The input bytes become an on-disk log —
// either a record segment (wal-0000000001.log) or a checkpoint file, selected by
// the first byte — and a full Youtopia instance is then recovered over
// that directory, exercising segment scanning, frame/CRC validation,
// WalRecord and CheckpointState decoding, statement re-execution (the
// parser again, via command logging) and coordinator re-registration.
//
// Invariants:
//   L1  Recovery never crashes, loops forever, or trips ASan/UBSan; a
//       mangled log either replays its well-formed prefix cleanly or
//       surfaces an error via recovery_status().
//   L2  recovered records <= well-formed frames in the segment: replay
//       stops at the first torn/corrupt frame and never resurrects
//       bytes past it (recovered ⊆ well-formed prefix).
//   L3  After a clean recovery the log is appendable again: a new
//       statement executes (or fails with an ordinary Status), and a
//       second recovery over the same directory also comes up.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>

#include "common/codec.h"
#include "fuzz_util.h"
#include "server/youtopia.h"
#include "wal/wal_record.h"

namespace {

namespace fs = std::filesystem;

// Mirrors the segment framing in wal_manager.cc: u32 length | u32 crc |
// payload, torn tail detected by length/CRC/decode failure.
constexpr size_t kWalFrameHeaderBytes = 8;
constexpr uint32_t kWalMaxRecordBytes = 64u * 1024 * 1024;

// Counts the well-formed record prefix of `bytes` exactly as Replay
// walks it, so L2 can compare against the engine's recovered count.
size_t WellFormedPrefixRecords(std::string_view bytes) {
  size_t count = 0;
  size_t offset = 0;
  while (offset + kWalFrameHeaderBytes <= bytes.size()) {
    youtopia::WireReader header(bytes.substr(offset, kWalFrameHeaderBytes));
    uint32_t length = 0;
    uint32_t crc = 0;
    if (!header.GetU32(&length) || !header.GetU32(&crc)) break;
    if (length == 0 || length > kWalMaxRecordBytes ||
        offset + kWalFrameHeaderBytes + length > bytes.size()) {
      break;
    }
    const std::string_view payload =
        bytes.substr(offset + kWalFrameHeaderBytes, length);
    if (youtopia::Crc32(payload) != crc) break;
    youtopia::WireReader reader(payload);
    youtopia::wal::WalRecord record;
    if (!youtopia::wal::WalRecord::DecodeFrom(&reader, &record) ||
        !reader.AtEnd()) {
      break;
    }
    ++count;
    offset += kWalFrameHeaderBytes + length;
  }
  return count;
}

void WriteFile(const fs::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

youtopia::YoutopiaConfig FuzzConfig(const std::string& dir) {
  youtopia::YoutopiaConfig config;
  config.wal.enabled = true;
  config.wal.dir = dir;
  config.wal.fsync = false;  // durability across iterations is not the point
  config.wal.checkpoint_on_shutdown = false;
  config.plan_cache.capacity = 0;  // no cross-iteration state
  return config;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t mode = data[0];
  const std::string_view bytes(reinterpret_cast<const char*>(data) + 1,
                               size - 1);

  static const fs::path dir =
      fs::temp_directory_path() /
      ("youtopia_fuzz_wal_" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  if (ec) return 0;

  const bool as_checkpoint = (mode & 1) != 0;
  if (as_checkpoint) {
    WriteFile(dir / "checkpoint", bytes);
  } else {
    WriteFile(dir / "wal-0000000001.log", bytes);
  }

  const size_t prefix_records =
      as_checkpoint ? 0 : WellFormedPrefixRecords(bytes);

  {
    youtopia::Youtopia db(FuzzConfig(dir.string()));  // L1: must come up
    if (!as_checkpoint && db.wal() != nullptr) {
      FUZZ_ASSERT(db.wal()->stats().recovered_records <= prefix_records,
                  "L2: replay must stop at the first malformed frame");
    }
    if (db.recovery_status().ok()) {
      // L3: the truncated tail must leave an appendable log. The
      // statement may fail (the replayed SQL could have created this
      // table already) but must not crash, and a failure must be an
      // ordinary Status.
      (void)db.Execute("CREATE TABLE fuzz_probe (x INT)");
    }
  }

  // L3: recover a second time over whatever the first pass left.
  youtopia::Youtopia db2(FuzzConfig(dir.string()));
  (void)db2.recovery_status();
  return 0;
}
