// Standalone driver for the fuzz targets when the toolchain has no
// libFuzzer runtime (gcc builds; clang links -fsanitize=fuzzer and this
// file is not compiled). It speaks a useful subset of the libFuzzer
// command line so README instructions work under either compiler:
//
//   fuzz_x crash-file ...            run each input once (repro mode)
//   fuzz_x -runs=N [-seed=S] [-max_len=L] [-dict=F] corpus-dir ...
//                                    seeded random mutation loop
//
// The mutation engine is deliberately simple — bit flips, chunk
// erase/insert/duplicate, corpus splices and dictionary insertions —
// enough to shake the decoders locally; coverage-guided exploration is
// what the clang/libFuzzer CI job is for. On a crash (sanitizer report
// or FUZZ_ASSERT abort) the dying input is written to crash-<pid>.bin
// in the working directory for repro.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <unistd.h>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
#if defined(__SANITIZE_ADDRESS__)
extern "C" void __sanitizer_set_death_callback(void (*)());
#endif

namespace {

std::string g_current;  // Input under test, dumped by the crash handler.

// Signal/death handler: async-signal-safe dump of the dying input.
void DumpCurrentInput() {
  char name[64];
  std::snprintf(name, sizeof(name), "crash-%d.bin", static_cast<int>(getpid()));
  const int fd = ::open(name, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ssize_t ignored = ::write(fd, g_current.data(), g_current.size());
    (void)ignored;
    ::close(fd);
  }
  const char msg[] = "standalone driver: wrote dying input to crash-<pid>.bin\n";
  ssize_t ignored = ::write(STDERR_FILENO, msg, sizeof(msg) - 1);
  (void)ignored;
}

void AbortHandler(int) { DumpCurrentInput(); }

int RunOne(const std::string& input) {
  g_current = input;
  return LLVMFuzzerTestOneInput(
      reinterpret_cast<const uint8_t*>(input.data()), input.size());
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return true;
}

// Parses a libFuzzer-format dictionary: one optionally `name=`-prefixed
// quoted token per line, with \\ \" and \xNN escapes; # comments.
std::vector<std::string> LoadDictionary(const std::string& path) {
  std::vector<std::string> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const size_t open = line.find('"');
    if (line.empty() || line[0] == '#' || open == std::string::npos) continue;
    std::string token;
    for (size_t i = open + 1; i < line.size() && line[i] != '"'; ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        if (line[i] == 'x' && i + 2 < line.size()) {
          token.push_back(static_cast<char>(
              std::stoi(line.substr(i + 1, 2), nullptr, 16)));
          i += 2;
        } else {
          token.push_back(line[i]);
        }
      } else {
        token.push_back(line[i]);
      }
    }
    if (!token.empty()) entries.push_back(std::move(token));
  }
  return entries;
}

std::string Mutate(std::string input, const std::vector<std::string>& corpus,
                   const std::vector<std::string>& dict, size_t max_len,
                   std::mt19937_64* rng) {
  const int rounds = 1 + static_cast<int>((*rng)() % 4);
  for (int round = 0; round < rounds; ++round) {
    switch ((*rng)() % 6) {
      case 0:  // flip bits in one byte
        if (!input.empty()) {
          input[(*rng)() % input.size()] ^= static_cast<char>(1u << ((*rng)() % 8));
        }
        break;
      case 1:  // overwrite one byte with anything
        if (!input.empty()) {
          input[(*rng)() % input.size()] = static_cast<char>((*rng)());
        }
        break;
      case 2: {  // erase a chunk
        if (!input.empty()) {
          const size_t pos = (*rng)() % input.size();
          input.erase(pos, 1 + (*rng)() % (input.size() - pos));
        }
        break;
      }
      case 3: {  // insert random bytes
        std::string chunk(1 + (*rng)() % 8, '\0');
        for (char& c : chunk) c = static_cast<char>((*rng)());
        input.insert((*rng)() % (input.size() + 1), chunk);
        break;
      }
      case 4: {  // splice a slice of another corpus entry
        if (!corpus.empty()) {
          const std::string& other = corpus[(*rng)() % corpus.size()];
          if (!other.empty()) {
            const size_t from = (*rng)() % other.size();
            const size_t len = 1 + (*rng)() % (other.size() - from);
            input.insert((*rng)() % (input.size() + 1),
                         other.substr(from, len));
          }
        }
        break;
      }
      case 5:  // insert a dictionary token
        if (!dict.empty()) {
          input.insert((*rng)() % (input.size() + 1),
                       dict[(*rng)() % dict.size()]);
        }
        break;
    }
  }
  if (input.size() > max_len) input.resize(max_len);
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGABRT, AbortHandler);
  std::signal(SIGSEGV, AbortHandler);
#if defined(__SANITIZE_ADDRESS__)
  // ASan bypasses signal handlers on its own reports; its death
  // callback covers that path.
  __sanitizer_set_death_callback(DumpCurrentInput);
#endif

  long runs = 0;
  uint64_t seed = 1;
  size_t max_len = 1 << 16;
  std::vector<std::string> dict;
  std::vector<std::string> inputs;  // files and directories

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::stol(arg.substr(6));
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::stoull(arg.substr(6));
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = std::stoul(arg.substr(9));
    } else if (arg.rfind("-dict=", 0) == 0) {
      dict = LoadDictionary(arg.substr(6));
    } else if (arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "ignoring unsupported flag %s\n", arg.c_str());
    } else {
      inputs.push_back(arg);
    }
  }

  std::vector<std::string> corpus;
  for (const std::string& path : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        std::string bytes;
        if (entry.is_regular_file() && ReadFile(entry.path().string(), &bytes)) {
          corpus.push_back(std::move(bytes));
        }
      }
    } else {
      std::string bytes;
      if (!ReadFile(path, &bytes)) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 2;
      }
      corpus.push_back(std::move(bytes));
    }
  }

  if (runs == 0) {
    // Repro mode: libFuzzer semantics — run every input once.
    std::fprintf(stderr, "running %zu input(s) once each\n", corpus.size());
    for (const std::string& input : corpus) RunOne(input);
    std::fprintf(stderr, "done: no crash\n");
    return 0;
  }

  std::mt19937_64 rng(seed);
  for (long i = 0; i < runs; ++i) {
    std::string base =
        corpus.empty() ? std::string() : corpus[rng() % corpus.size()];
    RunOne(Mutate(std::move(base), corpus, dict, max_len, &rng));
    if ((i + 1) % 100000 == 0) {
      std::fprintf(stderr, "  %ld/%ld runs\n", i + 1, runs);
    }
  }
  std::fprintf(stderr, "done: %ld mutated runs, no crash\n", runs);
  return 0;
}
