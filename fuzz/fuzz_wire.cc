// Fuzz target: the wire protocol. Bytes are fed to the FrameAssembler
// in two chunks (exercising the partial-frame resume path), every
// complete frame is dispatched to the decoder for its announced type,
// and any accepted message must satisfy a decode -> encode -> decode ->
// encode fixpoint: re-encoding the re-decoded message must produce the
// same bytes, or two peers would disagree about what was said.
//
// Invariants:
//   W1  FrameAssembler::Next never crashes or reads out of bounds, and
//       either yields a frame, asks for more bytes, or rejects the
//       stream with a Status — on any byte sequence.
//   W2  Decode(payload) ok  =>  EncodeFrame(msg) re-decodes, and the
//       second encode equals the first (codec fixpoint).
//   W3  A decoder never accepts a payload with trailing bytes.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "fuzz_util.h"
#include "net/protocol.h"

namespace net = youtopia::net;

namespace {

template <typename Message>
void RoundTrip(std::string_view payload) {
  auto decoded = net::DecodePayload<Message>(payload);
  if (!decoded.ok()) return;
  const std::string once = net::EncodeFrame(*decoded);
  // Strip the u32 length + type byte to recover the canonical payload.
  const std::string_view canonical =
      std::string_view(once).substr(net::kFrameHeaderBytes + 1);
  auto again = net::DecodePayload<Message>(canonical);
  FUZZ_ASSERT(again.ok(), "W2: a re-encoded accepted message must decode");
  FUZZ_ASSERT(net::EncodeFrame(*again) == once,
              "W2: re-encode must reach a byte-identical fixpoint");
}

void Dispatch(net::MessageType type, std::string_view payload) {
  switch (type) {
    case net::MessageType::kExecuteRequest:
      return RoundTrip<net::ExecuteRequest>(payload);
    case net::MessageType::kExecuteResponse:
      return RoundTrip<net::ExecuteResponse>(payload);
    case net::MessageType::kScriptRequest:
      return RoundTrip<net::ScriptRequest>(payload);
    case net::MessageType::kScriptResponse:
      return RoundTrip<net::ScriptResponse>(payload);
    case net::MessageType::kSubmitRequest:
      return RoundTrip<net::SubmitRequest>(payload);
    case net::MessageType::kSubmitResponse:
      return RoundTrip<net::SubmitResponse>(payload);
    case net::MessageType::kSubmitBatchRequest:
      return RoundTrip<net::SubmitBatchRequest>(payload);
    case net::MessageType::kSubmitBatchResponse:
      return RoundTrip<net::SubmitBatchResponse>(payload);
    case net::MessageType::kRunRequest:
      return RoundTrip<net::RunRequest>(payload);
    case net::MessageType::kRunResponse:
      return RoundTrip<net::RunResponse>(payload);
    case net::MessageType::kCancelRequest:
      return RoundTrip<net::CancelRequest>(payload);
    case net::MessageType::kCancelResponse:
      return RoundTrip<net::CancelResponse>(payload);
    case net::MessageType::kCompletionPush:
      return RoundTrip<net::CompletionPush>(payload);
  }
  // Unknown type byte: the server drops such frames; nothing to check.
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // Path 1: the stream. A small frame cap keeps hostile length fields
  // from turning every run into a 64 MiB buffer wait.
  net::FrameAssembler assembler(/*max_frame_bytes=*/1u << 20);
  assembler.Append(bytes.substr(0, size / 2));
  assembler.Append(bytes.substr(size / 2));
  for (;;) {
    auto next = assembler.Next();
    if (!next.ok()) break;              // malformed length: stream dropped
    if (!next->has_value()) break;      // needs more bytes than we have
    const net::Frame& frame = **next;
    Dispatch(frame.type, frame.payload);
  }

  // Path 2: the payload decoders directly, so coverage does not depend
  // on the fuzzer first learning the 4-byte framing. First byte selects
  // the message type, the rest is the payload.
  if (!bytes.empty()) {
    Dispatch(static_cast<net::MessageType>(
                 static_cast<uint8_t>(bytes[0]) % 13 + 1),
             bytes.substr(1));
  }
  return 0;
}
