// Seed-corpus generator for the fuzz targets. Emits one file per seed
// under <out-dir>/<target>/, derived from the statement shapes the
// existing tests and benches exercise, so every target starts with
// nonzero coverage instead of waiting for the mutator to stumble into
// the grammar / framing. Committed corpus files are regenerated with:
//
//   ./fuzz_make_seeds fuzz/corpus
//
// Deterministic: same binary, same bytes (no clocks, no randomness).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/codec.h"
#include "net/protocol.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"
#include "wal/wal_record.h"

namespace fs = std::filesystem;
namespace net = youtopia::net;
using youtopia::Status;
using youtopia::Tuple;
using youtopia::Value;
using youtopia::WireWriter;
namespace wal = youtopia::wal;

namespace {

void WriteSeed(const fs::path& dir, const std::string& name,
               const std::string& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------- parser

const char* kSqlSeeds[] = {
    // DDL (travel schema shapes).
    "CREATE TABLE flights (id INT NOT NULL, origin TEXT, dest TEXT, "
    "price DOUBLE, sold BOOL)",
    "CREATE INDEX ON flights (origin)",
    "DROP TABLE flights",
    // DML with every literal kind, multi-row, escaped quote.
    "INSERT INTO flights VALUES (1, 'SFO', 'JFK', 199.99, false), "
    "(2, 'O''Hare', NULL, 1e3, true)",
    "DELETE FROM flights WHERE price > 500 AND sold = false",
    "UPDATE flights SET price = price * 0.9, sold = true WHERE id = 2",
    // SELECT: expressions, aliases, joins, precedence.
    "SELECT f.id, f.price + 10 * 2 FROM flights f, bookings b "
    "WHERE f.id = b.flight AND NOT (f.price >= 100 OR f.sold != true)",
    "SELECT id FROM flights WHERE origin IN (SELECT dest FROM flights) "
    "AND price BETWEEN 50 AND 150",
    "SELECT -id, 'literal' FROM flights WHERE id <> 3",
    // Entangled queries (paper 2.1): INTO ANSWER, answer constraints,
    // CHOOSE.
    "SELECT 'alice', fno INTO ANSWER r1 "
    "WHERE fno IN (SELECT id FROM flights WHERE origin = 'SFO') "
    "AND ('bob', fno) IN ANSWER r1 CHOOSE 1",
    "SELECT 'a', fno INTO ANSWER ra, 'a', hid INTO ANSWER rb "
    "WHERE fno IN (SELECT id FROM flights) "
    "AND hid IN (SELECT id FROM hotels) CHOOSE 2",
    // Script edges: comments containing ';', empty statements,
    // unterminated-looking strings inside comments.
    "-- leading comment; with a semicolon\nSELECT 1;;\n"
    "SELECT 2 -- trailing'quote\n; SELECT 3",
    ";;;",
    "SELECT 'a;b' ; -- tail",
    // Numeric edges the lexer special-cases.
    "SELECT 9223372036854775807, 1.5e-300, 0.0001, 1e5 FROM t",
};

void EmitParserSeeds(const fs::path& out) {
  int i = 0;
  for (const char* sql : kSqlSeeds) {
    WriteSeed(out / "fuzz_parser", "sql_" + std::to_string(i++), sql);
  }
}

// ----------------------------------------------------- dump restore

void EmitDumpSeeds(const fs::path& out) {
  WriteSeed(out / "fuzz_dump_restore", "dump_0",
            "CREATE TABLE users (id INT NOT NULL, name TEXT, karma DOUBLE);\n"
            "INSERT INTO users VALUES (1, 'ann', 1.5), (2, 'bo''b', NULL);\n"
            "CREATE INDEX ON users (id);\n");
  WriteSeed(out / "fuzz_dump_restore", "dump_1",
            "CREATE TABLE a (x INT);\nCREATE TABLE b (y BOOL NOT NULL);\n"
            "INSERT INTO a VALUES (-9223372036854775808);\n"
            "INSERT INTO b VALUES (true), (false);\n");
  WriteSeed(out / "fuzz_dump_restore", "dump_2",
            "CREATE TABLE t (s TEXT);\n"
            "INSERT INTO t VALUES ('quote '' backslash \\ newline');\n"
            "DELETE FROM t WHERE s = 'nothing';\n"
            "UPDATE t SET s = 'rewritten' WHERE 1 = 1;\n");
}

// --------------------------------------------------------------- wire

void EmitWireSeeds(const fs::path& out) {
  const fs::path dir = out / "fuzz_wire";
  const Tuple row{Value::Int64(7), Value::String("SFO"), Value::Double(1.5),
                  Value::Bool(true), Value::Null()};

  net::ExecuteRequest exec_req;
  exec_req.request_id = 1;
  exec_req.sql = "SELECT id FROM flights WHERE price < 100";
  WriteSeed(dir, "execute_request", net::EncodeFrame(exec_req));

  net::ExecuteResponse exec_resp;
  exec_resp.request_id = 1;
  exec_resp.status = Status::OK();
  exec_resp.result.column_names = {"id", "origin", "price", "sold", "note"};
  exec_resp.result.rows = {row, row};
  exec_resp.result.affected_rows = 2;
  WriteSeed(dir, "execute_response", net::EncodeFrame(exec_resp));

  net::ScriptRequest script_req;
  script_req.request_id = 2;
  script_req.sql = "CREATE TABLE t (x INT); INSERT INTO t VALUES (1);";
  WriteSeed(dir, "script_request", net::EncodeFrame(script_req));

  net::ScriptResponse script_resp;
  script_resp.request_id = 2;
  script_resp.status = Status::InvalidArgument("syntax error at offset 3");
  WriteSeed(dir, "script_response", net::EncodeFrame(script_resp));

  net::SubmitRequest submit_req;
  submit_req.request_id = 3;
  submit_req.owner = "alice";
  submit_req.sql = "SELECT f.id INTO ANSWER r FROM flights f CHOOSE 1";
  WriteSeed(dir, "submit_request", net::EncodeFrame(submit_req));

  net::WireHandle handle;
  handle.query_id = 42;
  handle.done = true;
  handle.outcome = Status::OK();
  handle.answers = {row};

  net::SubmitResponse submit_resp;
  submit_resp.request_id = 3;
  submit_resp.status = Status::OK();
  submit_resp.handle = handle;
  WriteSeed(dir, "submit_response", net::EncodeFrame(submit_resp));

  net::SubmitBatchRequest batch_req;
  batch_req.request_id = 4;
  batch_req.owners = {"alice", "bob"};
  batch_req.statements = {submit_req.sql, submit_req.sql};
  WriteSeed(dir, "submit_batch_request", net::EncodeFrame(batch_req));

  net::SubmitBatchResponse batch_resp;
  batch_resp.request_id = 4;
  batch_resp.status = Status::OK();
  batch_resp.handles = {handle, handle};
  WriteSeed(dir, "submit_batch_response", net::EncodeFrame(batch_resp));

  net::RunRequest run_req;
  run_req.request_id = 5;
  run_req.owner = "carol";
  run_req.sql = "UPDATE t SET x = 2 WHERE x = 1";
  WriteSeed(dir, "run_request", net::EncodeFrame(run_req));

  net::RunResponse run_resp;
  run_resp.request_id = 5;
  run_resp.status = Status::OK();
  run_resp.entangled = true;
  run_resp.handle = handle;
  WriteSeed(dir, "run_response", net::EncodeFrame(run_resp));

  net::CancelRequest cancel_req;
  cancel_req.request_id = 6;
  cancel_req.query_id = 42;
  WriteSeed(dir, "cancel_request", net::EncodeFrame(cancel_req));

  net::CancelResponse cancel_resp;
  cancel_resp.request_id = 6;
  cancel_resp.status = Status::NotFound("query 42");
  WriteSeed(dir, "cancel_response", net::EncodeFrame(cancel_resp));

  net::CompletionPush push;
  push.query_id = 42;
  push.outcome = Status::Aborted("withdrawn");
  push.answers = {row};
  WriteSeed(dir, "completion_push", net::EncodeFrame(push));

  // A stream: several frames back to back, as the assembler sees them.
  WriteSeed(dir, "stream",
            net::EncodeFrame(exec_req) + net::EncodeFrame(exec_resp) +
                net::EncodeFrame(push));
}

// ---------------------------------------------------------------- wal

// Frames one record exactly as WalManager::EncodeFrame does:
// u32 length | u32 crc32(payload) | payload.
std::string FrameRecord(const wal::WalRecord& record) {
  WireWriter payload;
  record.EncodeTo(&payload);
  WireWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.bytes().size()));
  frame.PutU32(youtopia::Crc32(payload.bytes()));
  return frame.Take() + payload.bytes();
}

void EmitWalSeeds(const fs::path& out) {
  const fs::path dir = out / "fuzz_wal_replay";
  // Mode byte 0: segment bytes.
  const std::string kSegmentMode(1, '\0');

  std::string segment = kSegmentMode;
  segment += FrameRecord(wal::WalRecord::Statement(
      "CREATE TABLE t (x INT NOT NULL, s TEXT)"));
  segment += FrameRecord(
      wal::WalRecord::Statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')"));
  segment += FrameRecord(wal::WalRecord::Submit(
      7, "alice", "SELECT 'alice', x INTO ANSWER r WHERE x IN (SELECT x FROM t) CHOOSE 1"));
  segment += FrameRecord(wal::WalRecord::Resolve(7));
  WriteSeed(dir, "segment_statements", segment);

  std::string install = kSegmentMode;
  wal::WalRedoWrite write;
  write.kind = wal::WalRedoWrite::Kind::kInsert;
  write.table = "r";
  write.rid = 0;
  write.tuple = Tuple{Value::Int64(1)};
  install += FrameRecord(wal::WalRecord::Install({7, 8}, {write}));
  WriteSeed(dir, "segment_install", install);

  // A torn tail: one good record then half of another.
  std::string torn = kSegmentMode;
  torn += FrameRecord(wal::WalRecord::Statement("CREATE TABLE t (x INT)"));
  const std::string next =
      FrameRecord(wal::WalRecord::Statement("INSERT INTO t VALUES (1)"));
  torn += next.substr(0, next.size() / 2);
  WriteSeed(dir, "segment_torn_tail", torn);

  // Mode byte 1: checkpoint file bytes (framed u32 length | u32 crc).
  wal::CheckpointState state;
  wal::CheckpointTable table;
  table.name = "t";
  table.schema = youtopia::Schema(
      {{"x", youtopia::DataType::kInt64, false},
       {"s", youtopia::DataType::kString, true}});
  table.indexed_columns = {"x"};
  table.slot_count = 2;
  table.rows = {{0, Tuple{Value::Int64(1), Value::String("a")}},
                {1, Tuple{Value::Int64(2), Value::Null()}}};
  state.tables.push_back(std::move(table));
  state.pending.push_back(
      {7, "alice", "SELECT 'alice', x INTO ANSWER r WHERE x IN (SELECT x FROM t) CHOOSE 1"});
  state.next_query_id = 8;
  state.first_segment = 2;

  WireWriter payload;
  state.EncodeTo(&payload);
  WireWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.bytes().size()));
  frame.PutU32(youtopia::Crc32(payload.bytes()));
  WriteSeed(dir, "checkpoint",
            std::string(1, '\x01') + frame.Take() + payload.bytes());
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path out = argc > 1 ? argv[1] : "fuzz/corpus";
  EmitParserSeeds(out);
  EmitDumpSeeds(out);
  EmitWireSeeds(out);
  EmitWalSeeds(out);
  std::printf("seed corpora written under %s\n", out.string().c_str());
  return 0;
}
