#ifndef YOUTOPIA_FUZZ_FUZZ_UTIL_H_
#define YOUTOPIA_FUZZ_FUZZ_UTIL_H_

#include <cstdio>
#include <cstdlib>

/// Shared scaffolding for the libFuzzer targets in fuzz/.
///
/// Each target defines `LLVMFuzzerTestOneInput` and asserts its
/// invariants with FUZZ_ASSERT: unlike the C assert it is active in
/// every build mode (fuzzing a release binary with assertions compiled
/// out would be theater) and prints the violated condition before
/// aborting, so libFuzzer's crash report carries the failed invariant,
/// not just a SIGABRT.
#define FUZZ_ASSERT(cond, what)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "FUZZ_ASSERT failed: %s\n  invariant: %s\n",  \
                   #cond, what);                                         \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#endif  // YOUTOPIA_FUZZ_FUZZ_UTIL_H_
