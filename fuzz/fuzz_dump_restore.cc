// Fuzz target: the dump/restore path. The input is treated as a dump
// script and restored into an empty engine; whatever the restore
// accepts must then survive dump -> restore -> dump with byte-identical
// output, or a backup taken from a restored database would drift from
// the database it claims to capture.
//
// Invariants:
//   D1  RestoreFromScript never crashes on any script; a bad script
//       fails with an ordinary Status, leaving the engine usable.
//   D2  A successful restore dumps to a script that restores cleanly
//       into a second empty engine.
//   D3  dump(restore(dump(db))) == dump(db): the dump is a fixpoint,
//       so repeated backup/restore cycles cannot corrupt or drift.

#include <cstdint>
#include <string>

#include "fuzz_util.h"
#include "server/dump.h"
#include "server/youtopia.h"

namespace {

youtopia::YoutopiaConfig FuzzConfig() {
  youtopia::YoutopiaConfig config;
  config.plan_cache.capacity = 0;  // no cross-iteration state
  return config;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string script(reinterpret_cast<const char*>(data), size);

  youtopia::Youtopia db(FuzzConfig());
  const youtopia::Status restored =
      youtopia::RestoreFromScript(&db, script);  // D1: no crash
  if (!restored.ok()) return 0;

  auto dump1 = youtopia::DumpToScript(db);
  FUZZ_ASSERT(dump1.ok(), "D2: a restored engine must be dumpable");

  youtopia::Youtopia db2(FuzzConfig());
  const youtopia::Status restored2 = youtopia::RestoreFromScript(&db2, *dump1);
  FUZZ_ASSERT(restored2.ok(),
              "D2: a dump of a restored engine must restore cleanly");

  auto dump2 = youtopia::DumpToScript(db2);
  FUZZ_ASSERT(dump2.ok(), "D3: the second engine must be dumpable");
  FUZZ_ASSERT(*dump1 == *dump2, "D3: dump must be a restore fixpoint");
  return 0;
}
