// Fuzz target: the SQL front end. Raw bytes go through the lexer, the
// single-statement parser, and the script splitter; anything the parser
// accepts must survive an unparse -> reparse round trip (the dump/
// restore path depends on exactly this), and every ScriptPart's sliced
// source text must itself reparse to the same SQL.
//
// Invariants:
//   P1  Parse never crashes, hangs, or trips ASan/UBSan on any input.
//   P2  ParseStatement ok  =>  StatementToSql(stmt) reparses, and
//       unparse(reparse(unparse(stmt))) == unparse(stmt) (fixpoint).
//   P3  ParseScriptParts ok  =>  each part.text is nonempty, reparses
//       as one statement, and unparses identically to part.stmt — the
//       offset-slicing contract the per-step plan cache keys on.
//   P4  ParseScript and ParseScriptParts agree on statement count.

#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz_util.h"
#include "sql/parser.h"
#include "sql/unparser.h"

using youtopia::Parser;
using youtopia::StatementToSql;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view sql(reinterpret_cast<const char*>(data), size);

  auto stmt = Parser::ParseStatement(sql);
  if (stmt.ok()) {
    const std::string text = StatementToSql(**stmt);
    auto again = Parser::ParseStatement(text);
    FUZZ_ASSERT(again.ok(), "P2: unparsed accepted statement must reparse");
    FUZZ_ASSERT(StatementToSql(**again) == text,
                "P2: unparse/reparse must reach a fixpoint");
  }

  auto parts = Parser::ParseScriptParts(sql);
  auto script = Parser::ParseScript(sql);
  FUZZ_ASSERT(parts.ok() == script.ok(),
              "P4: ParseScript and ParseScriptParts must agree on accept");
  if (parts.ok()) {
    FUZZ_ASSERT(parts->size() == script->size(),
                "P4: ParseScript and ParseScriptParts must agree on count");
    for (const Parser::ScriptPart& part : *parts) {
      FUZZ_ASSERT(!part.text.empty(),
                  "P3: a sliced statement text must be nonempty");
      auto repart = Parser::ParseStatement(part.text);
      FUZZ_ASSERT(repart.ok(), "P3: a sliced statement text must reparse");
      FUZZ_ASSERT(StatementToSql(**repart) == StatementToSql(*part.stmt),
                  "P3: sliced text must reparse to the same statement");
    }
  }
  return 0;
}
