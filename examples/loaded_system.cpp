// The demo's loaded-system mode (paper §3): the travel examples run
// while a large number of entangled queries coordinate simultaneously.
// This driver sweeps session counts and prints throughput and latency
// percentiles.
//
// Usage: loaded_system [sessions] [requests_per_session] [shards] [workers]
//
// workers > 0 switches the driver to the async executor surface: one
// thread submits every request as a StatementTask and a pool of that
// many workers drives the whole statement path (per-session FIFO
// preserved). 0 (default) keeps the seed's thread-per-session mode.

#include <cstdio>
#include <cstdlib>

#include "travel/data_generator.h"
#include "travel/travel_schema.h"
#include "travel/workload.h"

int main(int argc, char** argv) {
  using namespace youtopia;  // NOLINT(build/namespaces) — example code

  const int max_sessions = argc > 1 ? std::atoi(argv[1]) : 16;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 50;
  const int shards = argc > 3 ? std::atoi(argv[3]) : 1;
  const int workers = argc > 4 ? std::atoi(argv[4]) : 0;

  std::printf("coordinator shards: %d, executor workers: %d\n", shards,
              workers);
  std::printf("%-10s %-10s %-14s %s\n", "sessions", "requests",
              "satisfied/s", "latency");
  for (int sessions = 2; sessions <= max_sessions; sessions *= 2) {
    YoutopiaConfig db_config;
    db_config.coordinator.num_shards =
        shards > 0 ? static_cast<size_t>(shards) : 1;
    db_config.executor.num_workers =
        workers > 0 ? static_cast<size_t>(workers) : 0;
    Youtopia db(db_config);
    if (!travel::CreateTravelSchema(&db).ok()) return 1;
    travel::DataGeneratorConfig data;
    data.cities = {"NewYork", "Paris", "Rome"};
    data.flights_per_route_per_day = 4;
    data.days = 3;
    if (!travel::GenerateTravelData(&db, data).ok()) return 1;

    travel::WorkloadConfig config;
    config.sessions = sessions;
    config.requests_per_session = requests;
    config.group_fraction = 0.2;
    config.hotel_fraction = 0.3;
    auto report = travel::RunLoadedWorkload(&db, "Paris", config);
    if (!report.ok()) {
      std::fprintf(stderr, "workload failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10d %-10zu %-14.1f %s\n", sessions, report->submitted,
                report->SatisfiedPerSecond(),
                report->latency.ToString().c_str());
    if (report->timed_out > 0 || report->errors > 0) {
      std::printf("  !! timed_out=%zu errors=%zu\n", report->timed_out,
                  report->errors);
    }
  }
  return 0;
}
