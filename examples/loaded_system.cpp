// The demo's loaded-system mode (paper §3): the travel examples run
// while a large number of entangled queries coordinate simultaneously.
// This driver sweeps session counts and prints throughput and latency
// percentiles.
//
// Usage: loaded_system [sessions] [requests_per_session] [shards] [workers]
//                      [loopback] [--data-dir <path>]
//        loaded_system --connect host:port [sessions] [requests_per_session]
//
// --data-dir <path> enables the write-ahead log (one subdirectory per
// session sweep, so each fresh engine recovers its own log) — the same
// workload with durability on, showing what group commit costs under
// coordination load.
//
// workers > 0 switches the driver to the async executor surface: one
// thread submits every request as a StatementTask and a pool of that
// many workers drives the whole statement path (per-session FIFO
// preserved). 0 (default) keeps the seed's thread-per-session mode.
//
// The trailing "loopback" argument starts an in-process YoutopiaServer
// and drives the same workload through a RemoteClient over TCP — the
// wire protocol's overhead is the delta against the plain run. With
// --connect the driver is purely a remote middle tier against an
// already-running youtopia_server (started with --travel so the
// dataset exists).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/remote_client.h"
#include "net/server.h"
#include "travel/data_generator.h"
#include "travel/travel_schema.h"
#include "travel/workload.h"

namespace {

using namespace youtopia;  // NOLINT(build/namespaces) — example code

Status SeedTravel(Youtopia* db) {
  YOUTOPIA_RETURN_IF_ERROR(travel::CreateTravelSchema(db));
  travel::DataGeneratorConfig data;
  data.cities = {"NewYork", "Paris", "Rome"};
  data.flights_per_route_per_day = 4;
  data.days = 3;
  return travel::GenerateTravelData(db, data).status();
}

travel::WorkloadConfig MakeConfig(int sessions, int requests) {
  travel::WorkloadConfig config;
  config.sessions = sessions;
  config.requests_per_session = requests;
  config.group_fraction = 0.2;
  config.hotel_fraction = 0.3;
  return config;
}

int PrintReport(int sessions, const Result<travel::WorkloadReport>& report) {
  if (!report.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%-10d %-10zu %-14.1f %s\n", sessions, report->submitted,
              report->SatisfiedPerSecond(),
              report->latency.ToString().c_str());
  if (report->timed_out > 0 || report->errors > 0) {
    std::printf("  !! timed_out=%zu errors=%zu\n", report->timed_out,
                report->errors);
  }
  return 0;
}

/// Remote middle-tier mode against an external youtopia_server.
int RunConnected(const std::string& endpoint, int sessions, int requests) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect needs host:port\n");
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  // A middle tier outlives server restarts and rides out admission
  // sheds: redial a dropped link and retry kOverloaded a few times
  // before surfacing it to the workload.
  net::ReconnectPolicy resilience;
  resilience.reconnect = true;
  resilience.overload_retry_budget = 4;
  auto client = net::RemoteClient::Connect(
      host, static_cast<uint16_t>(port),
      ClientOptions("travel", /*record=*/false), net::kMaxFrameBytes,
      resilience);
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s failed: %s\n", endpoint.c_str(),
                 client.status().ToString().c_str());
    return 1;
  }
  std::printf("connected to %s; %d sessions x %d requests\n",
              endpoint.c_str(), sessions, requests);
  auto report = travel::RunLoadedWorkload(
      static_cast<ClientInterface*>(client->get()), "Paris",
      MakeConfig(sessions, requests));
  const int rc = PrintReport(sessions, report);
  if (rc == 0 && report->timed_out == 0 && report->errors == 0) {
    std::printf("remote workload complete: all %zu requests satisfied\n",
                report->submitted);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 && std::strcmp(argv[1], "--connect") == 0) {
    const int sessions = argc > 3 ? std::atoi(argv[3]) : 4;
    const int requests = argc > 4 ? std::atoi(argv[4]) : 25;
    return RunConnected(argv[2], sessions, requests);
  }

  const char* data_dir = nullptr;
  int positional_ints[4] = {16, 50, 1, 0};
  bool loopback = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "loopback") == 0) {
      loopback = true;
      continue;
    }
    if (positional < 4) positional_ints[positional] = std::atoi(argv[i]);
    ++positional;
  }
  const int max_sessions = positional_ints[0];
  const int requests = positional_ints[1];
  const int shards = positional_ints[2];
  const int workers = positional_ints[3];

  std::printf("coordinator shards: %d, executor workers: %d%s%s%s\n", shards,
              workers, loopback ? ", loopback wire protocol" : "",
              data_dir != nullptr ? ", wal data dir " : "",
              data_dir != nullptr ? data_dir : "");
  std::printf("%-10s %-10s %-14s %s\n", "sessions", "requests",
              "satisfied/s", "latency");
  for (int sessions = 2; sessions <= max_sessions; sessions *= 2) {
    YoutopiaConfig db_config;
    db_config.coordinator.num_shards =
        shards > 0 ? static_cast<size_t>(shards) : 1;
    db_config.executor.num_workers =
        workers > 0 ? static_cast<size_t>(workers) : 0;
    if (data_dir != nullptr) {
      db_config.wal.enabled = true;
      db_config.wal.dir =
          std::string(data_dir) + "/s" + std::to_string(sessions);
    }
    Youtopia db(db_config);
    if (data_dir != nullptr && !db.recovery_status().ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   db.recovery_status().ToString().c_str());
      return 1;
    }
    // A re-run over an existing data dir recovers the previous dataset;
    // reseeding would collide on CREATE TABLE.
    if (!db.storage().catalog().HasTable("Flights") &&
        !SeedTravel(&db).ok()) {
      return 1;
    }

    const auto config = MakeConfig(sessions, requests);
    Result<travel::WorkloadReport> report = Status::OK();
    if (loopback) {
      net::YoutopiaServer server(&db);
      if (!server.Start().ok()) return 1;
      auto client = net::RemoteClient::Connect(
          "127.0.0.1", server.port(),
          ClientOptions("travel", /*record=*/false));
      if (!client.ok()) return 1;
      report = travel::RunLoadedWorkload(
          static_cast<ClientInterface*>(client->get()), "Paris", config);
    } else {
      report = travel::RunLoadedWorkload(&db, "Paris", config);
    }
    if (PrintReport(sessions, report) != 0) return 1;
  }
  return 0;
}
