// The engine as a network service: one embedded Youtopia behind the
// wire protocol, shared by every RemoteClient that connects — the
// paper's deployment shape, where many middle tiers drive one
// entangled-query engine.
//
// Usage: youtopia_server [port] [shards] [workers] [--travel]
//                        [--data-dir <path>] [--admission <n>]
//                        [--metrics-port <n>]
//
//   port      TCP port to bind on 127.0.0.1 (0 = kernel-assigned;
//             the actual port is printed on the READY line)
//   shards    coordinator pending-pool shards (default 1)
//   workers   executor-service pool size (default 0 = inline)
//   --travel  pre-load the travel schema + a generated dataset, so
//             remote clients can book immediately
//   --data-dir <path>
//             enable the write-ahead log under <path>: tables and
//             pending coordinations survive a kill — restart with the
//             same directory and a half-arrived pair is still waiting
//             for its partner. With --travel, seeding is skipped when
//             the recovered state already has the schema.
//   --admission <n>
//             shed statements with kOverloaded once the executor queue
//             reaches n (0 = off, the default): the front door degrades
//             by rejecting early instead of queueing without bound
//   --metrics-port <n>
//             serve the plaintext metrics page on this port (0 =
//             kernel-assigned; the bound port joins the READY line)
//
// Prints "READY port=<n> ..." once accepting, then serves until stdin
// reaches EOF (pipe-friendly: close the pipe to stop it), shuts down
// and exits 0 — what the CI loopback smoke asserts.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/server.h"
#include "travel/data_generator.h"
#include "travel/travel_schema.h"

int main(int argc, char** argv) {
  using namespace youtopia;  // NOLINT(build/namespaces) — example code

  int port = 0;
  int shards = 1;
  int workers = 0;
  bool travel_seed = false;
  const char* data_dir = nullptr;
  int admission = 0;
  int metrics_port = -1;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--travel") == 0) {
      travel_seed = true;
      continue;
    }
    if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--admission") == 0 && i + 1 < argc) {
      admission = std::atoi(argv[++i]);
      continue;
    }
    if (std::strcmp(argv[i], "--metrics-port") == 0 && i + 1 < argc) {
      metrics_port = std::atoi(argv[++i]);
      continue;
    }
    const int v = std::atoi(argv[i]);
    if (positional == 0) port = v;
    if (positional == 1) shards = v;
    if (positional == 2) workers = v;
    ++positional;
  }

  YoutopiaConfig config;
  config.coordinator.num_shards =
      shards > 0 ? static_cast<size_t>(shards) : 1;
  config.executor.num_workers =
      workers > 0 ? static_cast<size_t>(workers) : 0;
  config.executor.admission_high_water =
      admission > 0 ? static_cast<size_t>(admission) : 0;
  if (data_dir != nullptr) {
    config.wal.enabled = true;
    config.wal.dir = data_dir;
  }
  Youtopia db(config);
  if (data_dir != nullptr && !db.recovery_status().ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 db.recovery_status().ToString().c_str());
    return 1;
  }
  if (data_dir != nullptr) {
    const auto wal_stats = db.wal()->stats();
    std::printf("recovered %zu record(s), %zu pending coordination(s)\n",
                wal_stats.recovered_records,
                db.coordinator().pending_count());
  }
  // On a recovered data dir the schema (and bookings) are already
  // there; reseeding would fail on CREATE TABLE and double the data.
  if (travel_seed && db.storage().catalog().HasTable("Flights")) {
    std::printf("travel dataset recovered, skipping seed\n");
    travel_seed = false;
  }
  if (travel_seed) {
    if (!travel::CreateTravelSchema(&db).ok()) return 1;
    travel::DataGeneratorConfig data;
    data.cities = {"NewYork", "Paris", "Rome"};
    data.flights_per_route_per_day = 4;
    data.days = 3;
    if (!travel::GenerateTravelData(&db, data).ok()) return 1;
    std::printf("travel dataset loaded\n");
  }

  net::ServerConfig server_config;
  server_config.port = static_cast<uint16_t>(port);
  server_config.metrics_port = metrics_port;
  net::YoutopiaServer server(&db, server_config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("READY port=%u shards=%zu workers=%zu admission=%zu "
              "metrics_port=%u\n",
              server.port(), config.coordinator.num_shards,
              config.executor.num_workers,
              config.executor.admission_high_water, server.metrics_port());
  std::fflush(stdout);

  while (std::fgetc(stdin) != EOF) {
  }

  server.Stop();
  const auto stats = server.stats();
  std::printf(
      "youtopia_server: clean shutdown (connections=%zu requests=%zu "
      "shed=%zu pushes=%zu protocol_errors=%zu)\n",
      stats.connections_accepted, stats.requests, stats.shed, stats.pushes,
      stats.protocol_errors);
  return 0;
}
