// The demo's third application (paper §2.2/§3.2): "an administrative
// interface which allows us to show the internal state of the system
// and to visualize the state created by the matching algorithms."
//
// This console builds a small coordination scene step by step and dumps
// the internal state after each step: tables, pending queries with
// their compiled IR, the match graph with candidate edges and connected
// components, and coordination statistics.

#include <cstdio>

#include "server/admin.h"
#include "server/client.h"
#include "travel/travel_schema.h"

namespace {

using youtopia::Client;
using youtopia::ClientOptions;
using youtopia::Youtopia;

void Dump(const Youtopia& db, const char* moment) {
  std::printf("\n############ %s ############\n", moment);
  std::printf("%s", youtopia::TakeAdminSnapshot(db).ToString().c_str());
}

}  // namespace

int main() {
  Youtopia db;
  if (!youtopia::travel::SetupFigure1(&db).ok()) return 1;

  Dump(db, "fresh system (Figure 1 database loaded)");

  // One Client per demo user; the owner tag is what the pending-query
  // listing displays.
  Client kramer_client(&db, ClientOptions("Kramer"));
  Client elaine_client(&db, ClientOptions("Elaine"));
  Client jerry_client(&db, ClientOptions("Jerry"));

  // Kramer's query arrives and parks.
  auto kramer = kramer_client.Submit(
      "SELECT 'Kramer', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
      "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1");
  if (!kramer.ok()) return 1;
  Dump(db, "after Kramer's entangled query (pending, no partner)");

  // An unrelated pair floats in the pool — the match graph shows two
  // disconnected components.
  auto elaine = elaine_client.Submit(
      "SELECT 'Elaine', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Rome') "
      "AND ('George', fno) IN ANSWER Reservation CHOOSE 1");
  if (!elaine.ok()) return 1;
  Dump(db, "after Elaine's unrelated query (two components)");

  // Jerry arrives: his query and Kramer's form a closed component and
  // coordinate immediately.
  auto jerry = jerry_client.Submit(
      "SELECT 'Jerry', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
      "AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1");
  if (!jerry.ok()) return 1;
  std::printf("\nJerry + Kramer coordinated: %s and %s\n",
              jerry->Answers()[0].ToString().c_str(),
              kramer->Answers()[0].ToString().c_str());
  Dump(db, "after the joint answer (Elaine still waiting)");

  // Cancel Elaine's outstanding query to show pool withdrawal.
  if (elaine_client.CancelAll().ok()) {
    Dump(db, "after cancelling Elaine's query");
  }
  return 0;
}
