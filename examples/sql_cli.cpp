// The demo's second application (paper §2.2): "an SQL command line
// interface which allows SQL and entangled queries to be input directly
// to the system by the user."
//
// Usage:
//   sql_cli [--figure1 | --travel] [--data-dir <path>]
//
// --data-dir enables the write-ahead log under <path>: tables and
// pending entangled queries survive a kill. Restart with the same
// directory and \pending shows the half-arrived pair still waiting;
// submitting its partner matches it — the README's durability
// quickstart. (--figure1/--travel skip seeding on a recovered
// directory.)
//
// Regular statements print result tables; entangled queries are
// registered and report their query id; when a submission completes a
// coordination group, all completed queries are announced. Meta
// commands: \admin (system state), \pending, \graph, \help, \quit.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "server/admin.h"
#include "server/client.h"
#include "travel/data_generator.h"
#include "travel/travel_schema.h"

namespace {

using youtopia::Client;
using youtopia::ClientOptions;
using youtopia::EntangledHandle;
using youtopia::Youtopia;

void PrintHelp() {
  std::printf(
      "Youtopia SQL command line.\n"
      "  Regular SQL: CREATE TABLE / CREATE INDEX / DROP TABLE / INSERT /\n"
      "               DELETE / UPDATE / SELECT\n"
      "  Entangled:   SELECT ... INTO ANSWER Rel [, ...]\n"
      "               [WHERE ... IN (SELECT ...) AND (...) IN ANSWER Rel]\n"
      "               CHOOSE 1\n"
      "  Meta:        \\admin  \\pending  \\graph  \\help  \\quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool figure1 = false;
  bool travel = false;
  const char* data_dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--figure1") == 0) {
      figure1 = true;
    } else if (std::strcmp(argv[i], "--travel") == 0) {
      travel = true;
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    }
  }

  youtopia::YoutopiaConfig db_config;
  if (data_dir != nullptr) {
    db_config.wal.enabled = true;
    db_config.wal.dir = data_dir;
  }
  Youtopia db(db_config);
  if (data_dir != nullptr) {
    if (!db.recovery_status().ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   db.recovery_status().ToString().c_str());
      return 1;
    }
    std::printf("durable under %s: recovered %zu record(s), %zu pending "
                "coordination(s)\n",
                data_dir, db.wal()->stats().recovered_records,
                db.coordinator().pending_count());
  }
  // A recovered directory already holds the schema; reseeding would
  // collide on CREATE TABLE.
  const bool recovered_schema = db.storage().catalog().HasTable("Flights");
  if (figure1 && !recovered_schema) {
    if (!youtopia::travel::SetupFigure1(&db).ok()) return 1;
    std::printf("Loaded the Figure 1 database.\n");
  } else if (travel && !recovered_schema) {
    if (!youtopia::travel::CreateTravelSchema(&db).ok()) return 1;
    youtopia::travel::DataGeneratorConfig config;
    auto generated = youtopia::travel::GenerateTravelData(&db, config);
    if (!generated.ok()) return 1;
    std::printf("Loaded the travel database: %zu flights, %zu hotels.\n",
                generated->flights, generated->hotels);
  }
  PrintHelp();

  // The CLI is one logical connection: a Client with the "cli" owner
  // tag. Completions are announced by OnComplete callbacks registered
  // at submission — the statement that closes a group prints every
  // member's answer, with no polling loop.
  Client client(&db, ClientOptions("cli"));
  auto announce = [](const EntangledHandle& done) {
    std::printf("entangled query #%llu is now answered:\n",
                static_cast<unsigned long long>(done.id()));
    for (const auto& tuple : done.Answers()) {
      std::printf("  %s\n", tuple.ToString().c_str());
    }
  };

  std::string line;
  std::string statement;
  std::printf("youtopia> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line[0] == '\\') {
      if (line == "\\quit" || line == "\\q") break;
      if (line == "\\help") {
        PrintHelp();
      } else if (line == "\\admin") {
        std::printf("%s", youtopia::TakeAdminSnapshot(db).ToString().c_str());
      } else if (line == "\\pending") {
        for (const auto& p : db.coordinator().Pending()) {
          std::printf("#%llu (%s): %s\n",
                      static_cast<unsigned long long>(p.id),
                      p.owner.c_str(), p.sql.c_str());
        }
      } else if (line == "\\graph") {
        std::printf("%s", db.coordinator().RenderGraph().c_str());
      } else {
        std::printf("unknown meta command (try \\help)\n");
      }
      std::printf("youtopia> ");
      std::fflush(stdout);
      continue;
    }

    statement += line;
    // Statements end with ';'. Accumulate lines until then.
    auto end = statement.find_last_not_of(" \t\r\n");
    if (end == std::string::npos || statement[end] != ';') {
      statement += "\n";
      std::printf("      ...> ");
      std::fflush(stdout);
      continue;
    }
    statement.erase(end);  // drop the ';'

    auto outcome = client.Run(statement);
    if (!outcome.ok()) {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
    } else if (outcome->entangled) {
      EntangledHandle handle = *outcome->handle;
      if (handle.Done()) {
        std::printf("entangled query #%llu answered immediately:\n",
                    static_cast<unsigned long long>(handle.id()));
        for (const auto& tuple : handle.Answers()) {
          std::printf("  %s\n", tuple.ToString().c_str());
        }
      } else {
        std::printf("entangled query #%llu registered; waiting for "
                    "coordination partners\n",
                    static_cast<unsigned long long>(handle.id()));
        // Announcement fires from the future statement that completes
        // the coordination (it runs on this same REPL thread).
        handle.OnComplete(announce);
      }
    } else {
      std::printf("%s\n", outcome->result.ToString().c_str());
    }

    statement.clear();
    std::printf("youtopia> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
