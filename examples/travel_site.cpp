// The travel web site of the demonstration (paper §3.1), driven end to
// end through the middle tier: all six scenarios, with friend-graph
// validation, inventory enforcement, and notification delivery.

#include <cstdio>

#include "server/admin.h"
#include "travel/data_generator.h"
#include "travel/middle_tier.h"
#include "travel/travel_schema.h"

namespace {

using youtopia::EntangledHandle;
using youtopia::Result;
using youtopia::Youtopia;
namespace travel = youtopia::travel;

void Banner(const char* title) { std::printf("\n=== %s ===\n", title); }

bool Check(const youtopia::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    return false;
  }
  return true;
}

void ReportBooking(const char* who, const EntangledHandle& handle) {
  if (!handle.Done()) {
    std::printf("  %s: still pending\n", who);
    return;
  }
  std::printf("  %s:", who);
  for (const auto& tuple : handle.Answers()) {
    std::printf(" %s", tuple.ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Youtopia db;
  if (!Check(travel::CreateTravelSchema(&db), "schema")) return 1;

  travel::DataGeneratorConfig data_config;
  data_config.cities = {"NewYork", "Paris", "Rome", "London"};
  data_config.flights_per_route_per_day = 3;
  data_config.days = 3;
  auto generated = travel::GenerateTravelData(&db, data_config);
  if (!generated.ok()) return 1;
  std::printf("Generated %zu flights, %zu hotels, %zu seats\n",
              generated->flights, generated->hotels, generated->seats);

  // Friend import — the demo pulls this from Facebook; we substitute a
  // deterministic social graph (see DESIGN.md).
  travel::NotificationBus bus;
  bus.Subscribe([](const std::string& user, const std::string& message) {
    std::printf("  [message to %s] %s\n", user.c_str(), message.c_str());
  });
  travel::TravelService service(
      &db,
      travel::FriendGraph::Clique(
          {"Jerry", "Kramer", "Elaine", "George", "Newman", "Susan"}),
      &bus);
  if (!Check(service.EnableInventoryEnforcement(), "inventory enforcement")) {
    return 1;
  }

  Banner("Scenario 1: book a flight with a friend");
  auto jerry = service.BookFlightWithFriend("Jerry", "Kramer", "Paris");
  if (!Check(jerry.status(), "Jerry's request")) return 1;
  // Event-driven notification: the "Facebook message" is published from
  // whichever submission completes the pair — Jerry's thread is free.
  service.NotifyOnCompletion(*jerry, "Jerry");
  std::printf("Jerry submitted; pending queries: %zu\n",
              db.coordinator().pending_count());
  auto kramer = service.BookFlightWithFriend("Kramer", "Jerry", "Paris");
  if (!Check(kramer.status(), "Kramer's request")) return 1;
  service.NotifyOnCompletion(*kramer, "Kramer");
  ReportBooking("Jerry", *jerry);
  ReportBooking("Kramer", *kramer);

  Banner("Scenario 1b: browse flights, see friends' bookings, book direct");
  auto flights = service.BrowseFlights("Paris", /*day=*/0, /*max_price=*/0);
  if (flights.ok() && !flights->rows.empty()) {
    const int64_t fno = jerry->Answers()[0].at(1).int64_value();
    auto friends = service.FriendsOnFlight("Elaine", fno);
    if (friends.ok()) {
      std::printf("Elaine sees on flight %lld:", static_cast<long long>(fno));
      for (const auto& f : *friends) std::printf(" %s", f.c_str());
      std::printf("\n");
    }
    auto elaine = service.BookFlightDirect("Elaine", fno);
    if (elaine.ok()) ReportBooking("Elaine", *elaine);
  }

  Banner("Scenario 2: book a flight and a hotel with a friend");
  auto george =
      service.BookFlightAndHotelWithFriend("George", "Susan", "Rome");
  auto susan =
      service.BookFlightAndHotelWithFriend("Susan", "George", "Rome");
  if (george.ok() && susan.ok()) {
    ReportBooking("George", *george);
    ReportBooking("Susan", *susan);
  }

  Banner("Scenario 3: multiple simultaneous bookings");
  {
    auto a1 = service.BookFlightWithFriend("Jerry", "Elaine", "London");
    auto b1 = service.BookFlightWithFriend("Kramer", "Newman", "London");
    std::printf("Two half-pairs pending: %zu\n",
                db.coordinator().pending_count());
    auto a2 = service.BookFlightWithFriend("Elaine", "Jerry", "London");
    auto b2 = service.BookFlightWithFriend("Newman", "Kramer", "London");
    if (a1.ok() && a2.ok() && b1.ok() && b2.ok()) {
      ReportBooking("Jerry", *a1);
      ReportBooking("Elaine", *a2);
      ReportBooking("Kramer", *b1);
      ReportBooking("Newman", *b2);
    }
  }

  Banner("Scenario 4: group flight booking (four friends, one batch)");
  {
    // The friends submit together, so the middle tier hands the whole
    // group to the coordinator in one batch: a single matching round
    // closes it instead of four submissions each re-running the matcher.
    const std::vector<std::string> group = {"Jerry", "Kramer", "Elaine",
                                            "George"};
    std::vector<travel::TravelRequest> requests;
    for (const auto& self : group) {
      travel::TravelRequest request;
      request.user = self;
      for (const auto& other : group) {
        if (other != self) request.flight_companions.push_back(other);
      }
      request.dest = "Rome";
      request.day = 2;
      requests.push_back(std::move(request));
    }
    auto handles = service.SubmitGroupRequest(requests);
    if (!Check(handles.status(), "group batch")) return 1;
    for (size_t i = 0; i < group.size(); ++i) {
      ReportBooking(group[i].c_str(), (*handles)[i]);
    }
  }

  Banner("Scenario 5: group flight and hotel booking (three friends)");
  {
    const std::vector<std::string> group = {"Kramer", "Newman", "Susan"};
    std::vector<travel::TravelRequest> requests;
    for (const auto& self : group) {
      travel::TravelRequest request;
      request.user = self;
      for (const auto& other : group) {
        if (other != self) {
          request.flight_companions.push_back(other);
          request.hotel_companions.push_back(other);
        }
      }
      request.dest = "London";
      request.want_hotel = true;
      requests.push_back(std::move(request));
    }
    auto handles = service.SubmitGroupRequest(requests);
    if (!Check(handles.status(), "group batch")) return 1;
    for (size_t i = 0; i < group.size(); ++i) {
      ReportBooking(group[i].c_str(), (*handles)[i]);
    }
  }

  Banner("Scenario 6: ad-hoc coordination topology");
  {
    // Jerry <-> Kramer flights only; Kramer <-> Elaine flights + hotels.
    auto j = service.BookFlightWithFriend("Jerry", "Kramer", "NewYork");
    travel::TravelRequest kramer_request;
    kramer_request.user = "Kramer";
    kramer_request.flight_companions = {"Jerry", "Elaine"};
    kramer_request.hotel_companions = {"Elaine"};
    kramer_request.dest = "NewYork";
    kramer_request.want_hotel = true;
    auto k = service.SubmitRequest(kramer_request);
    travel::TravelRequest elaine_request;
    elaine_request.user = "Elaine";
    elaine_request.flight_companions = {"Kramer"};
    elaine_request.hotel_companions = {"Kramer"};
    elaine_request.dest = "NewYork";
    elaine_request.want_hotel = true;
    auto e = service.SubmitRequest(elaine_request);
    if (j.ok() && k.ok() && e.ok()) {
      ReportBooking("Jerry", *j);
      ReportBooking("Kramer", *k);
      ReportBooking("Elaine", *e);
    }
  }

  Banner("Account view (Jerry)");
  auto account = service.AccountView("Jerry");
  if (account.ok()) {
    std::printf("flights:\n%s\n", account->flights.ToString().c_str());
  }

  Banner("Coordination statistics");
  auto stats = db.coordinator().stats();
  std::printf(
      "submitted=%zu matched=%zu groups=%zu failed_installs=%zu "
      "from_stored=%zu\n",
      stats.submitted, stats.matched_queries, stats.matched_groups,
      stats.failed_installs, stats.constraints_from_stored);
  std::printf(
      "batches=%zu batched_queries=%zu callbacks_registered=%zu "
      "callbacks_fired=%zu\n",
      stats.batches, stats.batched_queries, stats.callbacks_registered,
      stats.callbacks_fired);
  return 0;
}
