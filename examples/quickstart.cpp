// Quickstart: the worked example of the paper (Figure 1).
//
// Kramer and Jerry each submit an entangled query asking for a flight to
// Paris *on the same flight as the other*. Neither query is answerable
// alone; once both are registered, Youtopia matches them and answers
// jointly with a coordinated flight number (122 or 123 — flight 134 also
// goes to Paris, but any choice satisfies both; the paper's Figure 1(b)
// shows 122).

#include <cstdio>

#include "server/admin.h"
#include "server/client.h"
#include "travel/travel_schema.h"

int main() {
  using youtopia::Client;
  using youtopia::ClientOptions;
  using youtopia::EntangledHandle;
  using youtopia::Youtopia;

  Youtopia db;

  // The exact database of Figure 1(a).
  auto setup = youtopia::travel::SetupFigure1(&db);
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", setup.ToString().c_str());
    return 1;
  }

  // Each user talks to the shared instance through the Client façade;
  // the owner tag is what the admin interface displays.
  Client kramer_client(&db, ClientOptions("Kramer"));
  Client jerry_client(&db, ClientOptions("Jerry"));

  std::printf("Flights table:\n%s\n\n",
              kramer_client.Execute("SELECT * FROM Flights")
                  .value()
                  .ToString()
                  .c_str());

  // Kramer's entangled query — exactly the SQL of the paper, Section
  // 2.1. The completion callback fires from whichever submission closes
  // the group; Kramer's thread never blocks in Wait.
  auto kramer = kramer_client.Submit(
      "SELECT 'Kramer', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
      "AND ('Jerry', fno) IN ANSWER Reservation "
      "CHOOSE 1",
      [](const EntangledHandle& done) {
        std::printf("  [callback] Kramer's query completed: %s\n",
                    done.Outcome().value_or(youtopia::Status::OK())
                        .ToString()
                        .c_str());
      });
  if (!kramer.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 kramer.status().ToString().c_str());
    return 1;
  }
  std::printf("Kramer's query registered; done=%s (waiting for Jerry)\n",
              kramer->Done() ? "yes" : "no");
  std::printf("Pending queries in the system: %zu\n\n",
              db.coordinator().pending_count());

  // Jerry submits the symmetric query — the names are swapped. This
  // submission closes the group, so Kramer's callback fires before
  // Submit returns.
  auto jerry = jerry_client.Submit(
      "SELECT 'Jerry', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
      "AND ('Kramer', fno) IN ANSWER Reservation "
      "CHOOSE 1");
  if (!jerry.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 jerry.status().ToString().c_str());
    return 1;
  }

  // Both queries are now jointly answered.
  std::printf("Jerry submitted. Kramer done=%s, Jerry done=%s\n",
              kramer->Done() ? "yes" : "no", jerry->Done() ? "yes" : "no");
  for (const auto& [who, handle] :
       {std::pair{"Kramer", &*kramer}, std::pair{"Jerry", &*jerry}}) {
    for (const auto& answer : handle->Answers()) {
      std::printf("  %s's answer tuple: %s\n", who,
                  answer.ToString().c_str());
    }
  }

  std::printf("\nAnswer relation after coordination:\n%s\n",
              jerry_client.Execute("SELECT * FROM Reservation")
                  .value()
                  .ToString()
                  .c_str());

  // The admin ("debugging") interface of the demo, Section 3.2.
  std::printf("\n%s", youtopia::TakeAdminSnapshot(db).ToString().c_str());
  return 0;
}
